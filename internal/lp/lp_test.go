package lp

import (
	"math"
	"math/rand"
	"testing"
)

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12? Check:
	// vertices: (0,0)=0 (4,0)=12 (0,2)=4 (3,1)=11. Optimum 12 at (4,0).
	p := NewMaximize([]float64{3, 2})
	mustAdd(t, p.AddDense([]float64{1, 1}, LE, 4))
	mustAdd(t, p.AddDense([]float64{1, 3}, LE, 6))
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-12) > 1e-7 {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	if math.Abs(sol.X[0]-4) > 1e-7 || math.Abs(sol.X[1]) > 1e-7 {
		t.Errorf("X = %v, want [4 0]", sol.X)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x <= 6 -> y >= 4; optimum x=6,y=4: 24.
	p := NewMinimize([]float64{2, 3})
	mustAdd(t, p.AddDense([]float64{1, 1}, GE, 10))
	mustAdd(t, p.AddDense([]float64{1, 0}, LE, 6))
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-24) > 1e-7 {
		t.Errorf("objective = %v, want 24", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + y s.t. x + y = 5, x <= 3 -> 5.
	p := NewMaximize([]float64{1, 1})
	mustAdd(t, p.AddDense([]float64{1, 1}, EQ, 5))
	mustAdd(t, p.AddDense([]float64{1, 0}, LE, 3))
	sol := Solve(p)
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-7 {
		t.Fatalf("got %v obj %v, want optimal 5", sol.Status, sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewMaximize([]float64{1})
	mustAdd(t, p.AddDense([]float64{1}, GE, 10))
	mustAdd(t, p.AddDense([]float64{1}, LE, 5))
	if sol := Solve(p); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewMinimize([]float64{1, 1})
	mustAdd(t, p.AddDense([]float64{1, 1}, EQ, 4))
	mustAdd(t, p.AddDense([]float64{1, 1}, EQ, 7))
	if sol := Solve(p); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewMaximize([]float64{1, 0})
	mustAdd(t, p.AddDense([]float64{0, 1}, LE, 5))
	if sol := Solve(p); sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestMinimizeUnboundedIsNotUnboundedBelowZero(t *testing.T) {
	// min x with x >= 0 implicit: optimum 0, not unbounded.
	p := NewMinimize([]float64{1})
	sol := Solve(p)
	if sol.Status != Optimal || math.Abs(sol.Objective) > 1e-9 {
		t.Fatalf("got %v obj %v, want optimal 0", sol.Status, sol.Objective)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2  (i.e. y >= x + 2), max x + y with y <= 5 -> x = 3, y = 5.
	p := NewMaximize([]float64{1, 1})
	mustAdd(t, p.AddDense([]float64{1, -1}, LE, -2))
	mustAdd(t, p.AddDense([]float64{0, 1}, LE, 5))
	sol := Solve(p)
	if sol.Status != Optimal || math.Abs(sol.Objective-8) > 1e-7 {
		t.Fatalf("got %v obj %v, want optimal 8", sol.Status, sol.Objective)
	}
}

func TestSparseAndBounds(t *testing.T) {
	p := NewMaximize([]float64{1, 2, 3})
	mustAdd(t, p.AddSparse([]int{0, 2}, []float64{1, 1}, LE, 10))
	mustAdd(t, p.AddUpperBound(1, 4))
	mustAdd(t, p.AddUpperBound(2, 6))
	mustAdd(t, p.AddLowerBound(0, 2))
	sol := Solve(p)
	// x2 = 6 (bound), x0 in [2, 4] (row 0 leaves 4), x1 = 4.
	// obj = 4 + 8 + 18 = 30.
	if sol.Status != Optimal || math.Abs(sol.Objective-30) > 1e-6 {
		t.Fatalf("got %v obj %v X %v, want optimal 30", sol.Status, sol.Objective, sol.X)
	}
}

func TestBoundHelpersSkipTrivial(t *testing.T) {
	p := NewMaximize([]float64{1})
	mustAdd(t, p.AddUpperBound(0, math.Inf(1)))
	mustAdd(t, p.AddLowerBound(0, 0))
	mustAdd(t, p.AddLowerBound(0, -5))
	if p.NumConstraints() != 0 {
		t.Errorf("trivial bounds added %d rows", p.NumConstraints())
	}
}

func TestAddErrors(t *testing.T) {
	p := NewMaximize([]float64{1, 2})
	if err := p.AddDense([]float64{1}, LE, 0); err == nil {
		t.Error("want error for short row")
	}
	if err := p.AddSparse([]int{0}, []float64{1, 2}, LE, 0); err == nil {
		t.Error("want error for mismatched sparse")
	}
	if err := p.AddSparse([]int{5}, []float64{1}, LE, 0); err == nil {
		t.Error("want error for out-of-range index")
	}
}

func TestDegenerateCycling(t *testing.T) {
	// A classically degenerate LP (Beale's example) that cycles under naive
	// Dantzig pivoting without anti-cycling.
	p := NewMaximize([]float64{0.75, -150, 0.02, -6})
	mustAdd(t, p.AddDense([]float64{0.25, -60, -0.04, 9}, LE, 0))
	mustAdd(t, p.AddDense([]float64{0.5, -90, -0.02, 3}, LE, 0))
	mustAdd(t, p.AddDense([]float64{0, 0, 1, 0}, LE, 1))
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-0.05) > 1e-7 {
		t.Errorf("objective = %v, want 0.05", sol.Objective)
	}
}

func TestPaperNumericalExampleRelaxation(t *testing.T) {
	// Section 4.4 overlapping example: cells c1 (in t1∩t2) and c2 (t2 only).
	// max 129.99 x1 + 149.99 x2 s.t. 50 <= x1 <= 100, 75 <= x1+x2 <= 125.
	p := NewMaximize([]float64{129.99, 149.99})
	mustAdd(t, p.AddDense([]float64{1, 0}, GE, 50))
	mustAdd(t, p.AddDense([]float64{1, 0}, LE, 100))
	mustAdd(t, p.AddDense([]float64{1, 1}, GE, 75))
	mustAdd(t, p.AddDense([]float64{1, 1}, LE, 125))
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	want := 50*129.99 + 75*149.99
	if math.Abs(sol.Objective-want) > 1e-6 {
		t.Errorf("objective = %v, want %v", sol.Objective, want)
	}
	// Lower bound side: min 0.99(x1+x2) -> 74.25.
	q := NewMinimize([]float64{0.99, 0.99})
	mustAdd(t, q.AddDense([]float64{1, 0}, GE, 50))
	mustAdd(t, q.AddDense([]float64{1, 0}, LE, 100))
	mustAdd(t, q.AddDense([]float64{1, 1}, GE, 75))
	mustAdd(t, q.AddDense([]float64{1, 1}, LE, 125))
	sol2 := Solve(q)
	if sol2.Status != Optimal || math.Abs(sol2.Objective-74.25) > 1e-6 {
		t.Fatalf("lower: got %v obj %v, want optimal 74.25", sol2.Status, sol2.Objective)
	}
}

func TestSolutionSatisfiesConstraints(t *testing.T) {
	// Random LPs: whenever Optimal, X must satisfy every constraint.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64()*20 - 10
		}
		var p *Problem
		if rng.Intn(2) == 0 {
			p = NewMaximize(c)
		} else {
			p = NewMinimize(c)
		}
		m := 1 + rng.Intn(5)
		type row struct {
			a     []float64
			sense Sense
			rhs   float64
		}
		var saved []row
		for i := 0; i < m; i++ {
			a := make([]float64, n)
			for j := range a {
				a[j] = rng.Float64()*4 - 1
			}
			sense := Sense(rng.Intn(2)) // LE or GE
			rhs := rng.Float64() * 20
			saved = append(saved, row{a, sense, rhs})
			mustAdd(t, p.AddDense(a, sense, rhs))
		}
		// Keep it bounded.
		for j := 0; j < n; j++ {
			mustAdd(t, p.AddUpperBound(j, 50))
			saved = append(saved, row{unit(n, j), LE, 50})
		}
		sol := Solve(p)
		if sol.Status != Optimal && sol.Status != Infeasible {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if sol.Status != Optimal {
			continue
		}
		for k, r := range saved {
			dot := 0.0
			for j := range r.a {
				dot += r.a[j] * sol.X[j]
			}
			switch r.sense {
			case LE:
				if dot > r.rhs+1e-6 {
					t.Fatalf("trial %d: row %d violated: %v > %v", trial, k, dot, r.rhs)
				}
			case GE:
				if dot < r.rhs-1e-6 {
					t.Fatalf("trial %d: row %d violated: %v < %v", trial, k, dot, r.rhs)
				}
			}
		}
		for j, v := range sol.X {
			if v < -1e-7 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, v)
			}
		}
	}
}

func TestAgainstBruteForce2D(t *testing.T) {
	// Cross-check optima on random bounded 2-D LPs using a fine grid search.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		c := []float64{rng.Float64()*10 - 5, rng.Float64()*10 - 5}
		p := NewMaximize(c)
		type row struct {
			a   []float64
			rhs float64
		}
		var cons []row
		for i := 0; i < 3; i++ {
			a := []float64{rng.Float64()*2 - 0.5, rng.Float64()*2 - 0.5}
			rhs := rng.Float64()*10 + 1
			cons = append(cons, row{a, rhs})
			mustAdd(t, p.AddDense(a, LE, rhs))
		}
		mustAdd(t, p.AddUpperBound(0, 10))
		mustAdd(t, p.AddUpperBound(1, 10))
		sol := Solve(p)
		if sol.Status != Optimal {
			// x = 0 is always feasible here (rhs > 0), so it must be optimal.
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		best := math.Inf(-1)
		const steps = 200
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := float64(i) / steps * 10
				y := float64(j) / steps * 10
				ok := true
				for _, r := range cons {
					if r.a[0]*x+r.a[1]*y > r.rhs+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					if v := c[0]*x + c[1]*y; v > best {
						best = v
					}
				}
			}
		}
		if sol.Objective < best-1e-3 {
			t.Fatalf("trial %d: simplex %v < grid %v", trial, sol.Objective, best)
		}
	}
}

func TestZeroVariables(t *testing.T) {
	p := NewMaximize(nil)
	sol := Solve(p)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("empty LP: %v %v", sol.Status, sol.Objective)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows produce a redundant artificial row that must be
	// handled when driving artificials out.
	p := NewMaximize([]float64{1, 1})
	mustAdd(t, p.AddDense([]float64{1, 1}, EQ, 5))
	mustAdd(t, p.AddDense([]float64{1, 1}, EQ, 5))
	mustAdd(t, p.AddDense([]float64{1, 0}, LE, 2))
	sol := Solve(p)
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-7 {
		t.Fatalf("got %v obj %v, want optimal 5", sol.Status, sol.Objective)
	}
}

func TestSenseStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("sense strings wrong")
	}
	for _, s := range []Status{Optimal, Infeasible, Unbounded, IterLimit} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
	if Sense(99).String() == "" || Status(99).String() == "" {
		t.Error("unknown enum strings should not be empty")
	}
}

func unit(n, j int) []float64 {
	a := make([]float64, n)
	a[j] = 1
	return a
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 50, 40
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.Float64()
	}
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = make([]float64, n)
		for j := range rows[i] {
			rows[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		p := NewMaximize(c)
		for i := range rows {
			_ = p.AddDense(rows[i], LE, 10)
		}
		sol := Solve(p)
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
