// Package lp implements a dense two-phase primal simplex solver for linear
// programs. It substitutes for the off-the-shelf LP/MILP solver the paper
// uses (Section 4.2 uses a MILP solver; Section 5.2 needs an LP for the
// fractional edge cover). The LPs in this system are small — one variable
// per decomposition cell and two constraint rows per predicate-constraint —
// so a dense tableau with Bland's-rule anti-cycling is exact, dependency-free
// and fast.
//
// Rows are stored sparsely and only densified into the simplex tableau at
// solve time, so problems are cheap to assemble, clone, and (via PushRow /
// PopRow) to extend and retract — branch-and-bound materializes a node's
// bound rows onto a shared base problem instead of deep-copying it. Solve
// allocates a fresh tableau per call; a reusable Context (context.go) keeps
// the tableau arenas alive across solves and produces bit-identical results.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective is unbounded over the feasible region.
	Unbounded
	// IterLimit means the iteration budget was exhausted before optimality.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// constraint is one row a·x (sense) rhs. Exactly one representation is set:
// dense holds a full coefficient vector; otherwise (idx, val) hold the
// non-zero entries (duplicate indices accumulate).
type constraint struct {
	dense []float64
	idx   []int
	val   []float64
	sense Sense
	rhs   float64
}

// Problem is a linear program over n non-negative variables:
//
//	maximize (or minimize) c·x  subject to  A x (≤,≥,=) b,  x ≥ 0.
//
// Variables are implicitly bounded below by zero; upper bounds are expressed
// as LE constraint rows (see AddUpperBound).
type Problem struct {
	n        int
	c        []float64
	maximize bool
	cons     []constraint
}

// NewMaximize creates an LP maximizing c·x over n = len(c) variables.
func NewMaximize(c []float64) *Problem {
	return &Problem{n: len(c), c: append([]float64(nil), c...), maximize: true}
}

// NewMinimize creates an LP minimizing c·x over n = len(c) variables.
func NewMinimize(c []float64) *Problem {
	return &Problem{n: len(c), c: append([]float64(nil), c...), maximize: false}
}

// Reset re-initializes the problem in place: new objective, zero rows,
// retained row capacity. Solve contexts use it to rebuild per-query row sets
// without reallocating the problem.
func (p *Problem) Reset(c []float64, maximize bool) {
	p.n = len(c)
	p.c = append(p.c[:0], c...)
	p.maximize = maximize
	p.cons = p.cons[:0]
}

// N returns the number of structural variables.
func (p *Problem) N() int { return p.n }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Clone returns a deep copy of the problem, so branch-and-bound can add
// bounds without disturbing the parent node.
func (p *Problem) Clone() *Problem {
	q := &Problem{n: p.n, c: append([]float64(nil), p.c...), maximize: p.maximize}
	q.cons = make([]constraint, len(p.cons))
	for i, con := range p.cons {
		q.cons[i] = constraint{
			dense: append([]float64(nil), con.dense...),
			idx:   append([]int(nil), con.idx...),
			val:   append([]float64(nil), con.val...),
			sense: con.sense,
			rhs:   con.rhs,
		}
	}
	return q
}

// AddDense adds the constraint a·x (sense) rhs with a dense coefficient row.
func (p *Problem) AddDense(a []float64, sense Sense, rhs float64) error {
	if len(a) != p.n {
		return fmt.Errorf("lp: coefficient row has %d entries, want %d", len(a), p.n)
	}
	p.cons = append(p.cons, constraint{dense: append([]float64(nil), a...), sense: sense, rhs: rhs})
	return nil
}

// AddSparse adds the constraint Σ val[k]·x[idx[k]] (sense) rhs. idx and val
// are copied.
func (p *Problem) AddSparse(idx []int, val []float64, sense Sense, rhs float64) error {
	if err := p.checkSparse(idx, val); err != nil {
		return err
	}
	p.cons = append(p.cons, constraint{
		idx:   append([]int(nil), idx...),
		val:   append([]float64(nil), val...),
		sense: sense,
		rhs:   rhs,
	})
	return nil
}

// PushRow appends the constraint Σ val[k]·x[idx[k]] (sense) rhs WITHOUT
// copying idx and val: the caller must keep both unchanged for as long as
// the row is pushed. Together with PopRow this gives branch-and-bound O(1)
// row append/retract on a shared problem, instead of deep-cloning the
// problem per node.
func (p *Problem) PushRow(idx []int, val []float64, sense Sense, rhs float64) error {
	if err := p.checkSparse(idx, val); err != nil {
		return err
	}
	p.cons = append(p.cons, constraint{idx: idx, val: val, sense: sense, rhs: rhs})
	return nil
}

// PopRow removes the most recently added constraint row.
func (p *Problem) PopRow() {
	if len(p.cons) == 0 {
		return
	}
	p.cons[len(p.cons)-1] = constraint{} // release references
	p.cons = p.cons[:len(p.cons)-1]
}

func (p *Problem) checkSparse(idx []int, val []float64) error {
	if len(idx) != len(val) {
		return errors.New("lp: sparse index/value length mismatch")
	}
	for _, i := range idx {
		if i < 0 || i >= p.n {
			return fmt.Errorf("lp: variable index %d out of range [0,%d)", i, p.n)
		}
	}
	return nil
}

// AddUpperBound adds x[i] ≤ ub. Infinite ub rows are skipped.
func (p *Problem) AddUpperBound(i int, ub float64) error {
	if math.IsInf(ub, 1) {
		return nil
	}
	return p.AddSparse([]int{i}, []float64{1}, LE, ub)
}

// AddLowerBound adds x[i] ≥ lb. Non-positive lb rows are skipped (x ≥ 0
// already holds).
func (p *Problem) AddLowerBound(i int, lb float64) error {
	if lb <= 0 {
		return nil
	}
	return p.AddSparse([]int{i}, []float64{1}, GE, lb)
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the structural variable values when Status is Optimal.
	X []float64
	// Iterations is the total simplex pivots across both phases.
	Iterations int
}

// Solve runs two-phase primal simplex and returns the solution. It is
// equivalent to solving with a fresh Context; reuse a Context on hot paths
// to avoid re-allocating the tableau (results are bit-identical).
func Solve(p *Problem) Solution {
	var cx Context
	return cx.Solve(p)
}
