// Package lp implements a dense two-phase primal simplex solver for linear
// programs. It substitutes for the off-the-shelf LP/MILP solver the paper
// uses (Section 4.2 uses a MILP solver; Section 5.2 needs an LP for the
// fractional edge cover). The LPs in this system are small — one variable
// per decomposition cell and two constraint rows per predicate-constraint —
// so a dense tableau with Bland's-rule anti-cycling is exact, dependency-free
// and fast.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective is unbounded over the feasible region.
	Unbounded
	// IterLimit means the iteration budget was exhausted before optimality.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// constraint is a dense row a·x (sense) rhs.
type constraint struct {
	a     []float64
	sense Sense
	rhs   float64
}

// Problem is a linear program over n non-negative variables:
//
//	maximize (or minimize) c·x  subject to  A x (≤,≥,=) b,  x ≥ 0.
//
// Variables are implicitly bounded below by zero; upper bounds are expressed
// as LE constraint rows (see AddUpperBound).
type Problem struct {
	n        int
	c        []float64
	maximize bool
	cons     []constraint
}

// NewMaximize creates an LP maximizing c·x over n = len(c) variables.
func NewMaximize(c []float64) *Problem {
	return &Problem{n: len(c), c: append([]float64(nil), c...), maximize: true}
}

// NewMinimize creates an LP minimizing c·x over n = len(c) variables.
func NewMinimize(c []float64) *Problem {
	return &Problem{n: len(c), c: append([]float64(nil), c...), maximize: false}
}

// N returns the number of structural variables.
func (p *Problem) N() int { return p.n }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Clone returns a deep copy of the problem, so branch-and-bound can add
// bounds without disturbing the parent node.
func (p *Problem) Clone() *Problem {
	q := &Problem{n: p.n, c: append([]float64(nil), p.c...), maximize: p.maximize}
	q.cons = make([]constraint, len(p.cons))
	for i, con := range p.cons {
		q.cons[i] = constraint{a: append([]float64(nil), con.a...), sense: con.sense, rhs: con.rhs}
	}
	return q
}

// AddDense adds the constraint a·x (sense) rhs with a dense coefficient row.
func (p *Problem) AddDense(a []float64, sense Sense, rhs float64) error {
	if len(a) != p.n {
		return fmt.Errorf("lp: coefficient row has %d entries, want %d", len(a), p.n)
	}
	p.cons = append(p.cons, constraint{a: append([]float64(nil), a...), sense: sense, rhs: rhs})
	return nil
}

// AddSparse adds the constraint Σ val[k]·x[idx[k]] (sense) rhs.
func (p *Problem) AddSparse(idx []int, val []float64, sense Sense, rhs float64) error {
	if len(idx) != len(val) {
		return errors.New("lp: sparse index/value length mismatch")
	}
	a := make([]float64, p.n)
	for k, i := range idx {
		if i < 0 || i >= p.n {
			return fmt.Errorf("lp: variable index %d out of range [0,%d)", i, p.n)
		}
		a[i] += val[k]
	}
	p.cons = append(p.cons, constraint{a: a, sense: sense, rhs: rhs})
	return nil
}

// AddUpperBound adds x[i] ≤ ub. Infinite ub rows are skipped.
func (p *Problem) AddUpperBound(i int, ub float64) error {
	if math.IsInf(ub, 1) {
		return nil
	}
	return p.AddSparse([]int{i}, []float64{1}, LE, ub)
}

// AddLowerBound adds x[i] ≥ lb. Non-positive lb rows are skipped (x ≥ 0
// already holds).
func (p *Problem) AddLowerBound(i int, lb float64) error {
	if lb <= 0 {
		return nil
	}
	return p.AddSparse([]int{i}, []float64{1}, GE, lb)
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the structural variable values when Status is Optimal.
	X []float64
	// Iterations is the total simplex pivots across both phases.
	Iterations int
}

const (
	eps = 1e-9
	// blandAfter switches pivoting from Dantzig's rule to Bland's rule after
	// this many pivots, guaranteeing termination on degenerate problems.
	blandAfter = 2000
)

// Solve runs two-phase primal simplex and returns the solution.
func Solve(p *Problem) Solution {
	m := len(p.cons)
	if p.n == 0 {
		return Solution{Status: Optimal, Objective: 0, X: nil}
	}
	// Internally always maximize; flip sign for minimization problems.
	c := make([]float64, p.n)
	sign := 1.0
	if !p.maximize {
		sign = -1.0
	}
	for i, v := range p.c {
		c[i] = sign * v
	}

	// Normalize rows to non-negative rhs and count auxiliary columns.
	type rowSpec struct {
		a     []float64
		rhs   float64
		sense Sense
	}
	rows := make([]rowSpec, m)
	nSlack, nArt := 0, 0
	for i, con := range p.cons {
		a := append([]float64(nil), con.a...)
		rhs := con.rhs
		sense := con.sense
		if rhs < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		rows[i] = rowSpec{a: a, rhs: rhs, sense: sense}
		switch sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	total := p.n + nSlack + nArt
	artStart := p.n + nSlack
	t := &tableau{
		m:     m,
		n:     total,
		rows:  make([][]float64, m),
		basis: make([]int, m),
	}
	slackCol, artCol := p.n, artStart
	needPhase1 := false
	for i, r := range rows {
		row := make([]float64, total+1)
		copy(row, r.a)
		row[total] = r.rhs
		switch r.sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
			needPhase1 = true
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
			needPhase1 = true
		}
		t.rows[i] = row
	}

	iters := 0
	if needPhase1 {
		// Phase 1: maximize -Σ artificials.
		obj := make([]float64, total+1)
		for j := artStart; j < total; j++ {
			obj[j] = -1
		}
		t.setObjective(obj)
		st, it := t.optimize(artStart) // artificials may not re-enter? they may; block them only in phase 2
		iters += it
		if st == Unbounded {
			// Phase 1 objective is bounded above by 0; unbounded means a bug.
			return Solution{Status: Infeasible, Iterations: iters}
		}
		if st == IterLimit {
			return Solution{Status: IterLimit, Iterations: iters}
		}
		if -t.objValue() > eps {
			return Solution{Status: Infeasible, Objective: 0, Iterations: iters}
		}
		// Drive remaining artificial variables out of the basis.
		for i := 0; i < t.m; i++ {
			if t.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t.rows[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it out; keep the artificial basic at 0.
				for j := 0; j < artStart; j++ {
					t.rows[i][j] = 0
				}
				t.rows[i][total] = 0
			}
		}
	}

	// Phase 2: real objective; artificial columns are frozen out.
	obj := make([]float64, total+1)
	copy(obj, c)
	t.setObjective(obj)
	st, it := t.optimize(artStart)
	iters += it
	switch st {
	case Unbounded:
		return Solution{Status: Unbounded, Iterations: iters}
	case IterLimit:
		return Solution{Status: IterLimit, Iterations: iters}
	}
	x := make([]float64, p.n)
	for i, b := range t.basis {
		if b < p.n {
			x[b] = t.rows[i][total]
		}
	}
	objVal := 0.0
	for i := range x {
		objVal += p.c[i] * x[i]
	}
	return Solution{Status: Optimal, Objective: objVal, X: x, Iterations: iters}
}

// tableau is a dense simplex tableau with an explicit reduced-cost row.
type tableau struct {
	m, n  int
	rows  [][]float64 // m rows of n+1 entries (rhs last)
	obj   []float64   // n+1: reduced costs, obj[n] = -objectiveValue
	basis []int
}

func (t *tableau) objValue() float64 { return -t.obj[t.n] }

// setObjective installs a fresh objective c (length n+1, rhs entry ignored)
// and prices it out against the current basis.
func (t *tableau) setObjective(c []float64) {
	t.obj = append([]float64(nil), c...)
	t.obj[t.n] = 0
	for i, b := range t.basis {
		cb := c[b]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j <= t.n; j++ {
			t.obj[j] -= cb * row[j]
		}
	}
}

// pivot performs a Gauss-Jordan pivot at (pr, pc).
func (t *tableau) pivot(pr, pc int) {
	prow := t.rows[pr]
	pv := prow[pc]
	inv := 1 / pv
	for j := 0; j <= t.n; j++ {
		prow[j] *= inv
	}
	prow[pc] = 1 // kill residual rounding
	for i := 0; i < t.m; i++ {
		if i == pr {
			continue
		}
		row := t.rows[i]
		f := row[pc]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.n; j++ {
			row[j] -= f * prow[j]
		}
		row[pc] = 0
	}
	f := t.obj[pc]
	if f != 0 {
		for j := 0; j <= t.n; j++ {
			t.obj[j] -= f * prow[j]
		}
		t.obj[pc] = 0
	}
	t.basis[pr] = pc
}

// optimize runs primal simplex until optimal/unbounded/limit. Columns with
// index >= colLimit are not allowed to enter the basis (used to freeze
// artificials in phase 2).
func (t *tableau) optimize(colLimit int) (Status, int) {
	maxIters := 10000 + 50*(t.m+t.n)
	for iter := 0; iter < maxIters; iter++ {
		bland := iter >= blandAfter
		// Entering column: positive reduced cost (we maximize, obj row holds
		// c - z).
		pc := -1
		best := eps
		for j := 0; j < colLimit; j++ {
			if t.obj[j] > eps {
				if bland {
					pc = j
					break
				}
				if t.obj[j] > best {
					best = t.obj[j]
					pc = j
				}
			}
		}
		if pc < 0 {
			return Optimal, iter
		}
		// Ratio test.
		pr := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][pc]
			if a <= eps {
				continue
			}
			ratio := t.rows[i][t.n] / a
			if ratio < bestRatio-eps ||
				(ratio < bestRatio+eps && pr >= 0 && t.basis[i] < t.basis[pr]) {
				bestRatio = ratio
				pr = i
			}
		}
		if pr < 0 {
			return Unbounded, iter
		}
		t.pivot(pr, pc)
	}
	return IterLimit, maxIters
}
