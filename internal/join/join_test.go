package join

import (
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

func TestTriangleEdgeCover(t *testing.T) {
	g := Triangle(100)
	c, err := FractionalEdgeCover(g, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid(g) {
		t.Fatalf("invalid cover %v", c)
	}
	// Optimal triangle cover is (1/2, 1/2, 1/2).
	for i, v := range c {
		if math.Abs(v-0.5) > 1e-6 {
			t.Errorf("c[%d] = %v, want 0.5", i, v)
		}
	}
	b, err := CountBound(g)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(100, 1.5)
	if math.Abs(b-want) > 1e-6*want {
		t.Errorf("triangle bound = %v, want N^1.5 = %v", b, want)
	}
	// Naive/elastic bounds are N^3 — multiple orders of magnitude looser.
	if naive := CartesianCount(g); naive != 1e6 {
		t.Errorf("Cartesian = %v, want 1e6", naive)
	}
	if es := ElasticCountBound(g); es != 1e6 {
		t.Errorf("elastic = %v, want 1e6", es)
	}
}

func TestChainEdgeCover(t *testing.T) {
	// R1(x1,x2) ⋈ … ⋈ R5(x5,x6): optimal cover picks relations 1, 3, 5.
	g := Chain(5, 1000)
	b, err := CountBound(g)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1000, 3)
	if math.Abs(b-want) > 1e-6*want {
		t.Errorf("chain bound = %v, want N^3 = %v", b, want)
	}
	if es := ElasticCountBound(g); es != math.Pow(1000, 5) {
		t.Errorf("elastic chain = %v, want N^5", es)
	}
}

func TestCliqueEdgeCover(t *testing.T) {
	// 4-clique with 3-attribute relations: AGM exponent is 4/3.
	g := Clique(4, 10)
	b, err := CountBound(g)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(10, 4.0/3.0)
	if math.Abs(b-want) > 1e-6*want {
		t.Errorf("4-clique bound = %v, want N^(4/3) = %v", b, want)
	}
	// Degenerate k<3 falls back to triangle-sized clique.
	g3 := Clique(2, 10)
	if len(g3.Rels) != 3 {
		t.Errorf("Clique(2) made %d relations, want 3", len(g3.Rels))
	}
}

func TestSumBoundTwoRelationJoin(t *testing.T) {
	// R(x,y) with SUM bound 500, S(y,z) with 200 rows:
	// SUM over join <= 500 × 200.
	g := Graph{Rels: []Relation{
		{Name: "R", Attrs: []string{"x", "y"}, Count: 100, Sum: 500},
		{Name: "S", Attrs: []string{"y", "z"}, Count: 200},
	}}
	b, err := SumBound(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-500*200) > 1e-6 {
		t.Errorf("SumBound = %v, want 100000", b)
	}
	if cs := CartesianSum(g, 0); cs != 500*200 {
		t.Errorf("CartesianSum = %v", cs)
	}
}

func TestSumBoundTriangleWeighted(t *testing.T) {
	// Weighted triangle: SUM on R; cover with c_R = 1 leaves b,a covered, c
	// needs c_S + c_T >= 1, so min is N^1 extra — total Sum × N.
	g := Triangle(100)
	g.Rels[0].Sum = 1000
	b, err := SumBound(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000.0 * 100
	if math.Abs(b-want) > 1e-6*want {
		t.Errorf("weighted triangle = %v, want %v", b, want)
	}
	// Strictly tighter than Cartesian (1000 × 100 × 100).
	if cs := CartesianSum(g, 0); b >= cs {
		t.Errorf("FEC sum %v not tighter than Cartesian %v", b, cs)
	}
}

func TestBoundMonotoneInSize(t *testing.T) {
	prev := 0.0
	for _, n := range []float64{10, 100, 1000, 10000} {
		b, err := CountBound(Triangle(n))
		if err != nil {
			t.Fatal(err)
		}
		if b <= prev {
			t.Errorf("bound %v not increasing at n=%v", b, n)
		}
		// FEC must always be at most the elastic/Cartesian bound.
		if es := ElasticCountBound(Triangle(n)); b > es+1e-9 {
			t.Errorf("FEC %v exceeds elastic %v at n=%v", b, es, n)
		}
		prev = b
	}
}

func TestZeroAndDegenerateCounts(t *testing.T) {
	g := Triangle(100)
	g.Rels[1].Count = 0
	b, err := CountBound(g)
	if err != nil || b != 0 {
		t.Errorf("zero relation: bound = %v err %v, want 0", b, err)
	}
	if _, err := FractionalEdgeCover(Graph{}, -1); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := FractionalEdgeCover(Triangle(10), 5); err == nil {
		t.Error("out-of-range fix accepted")
	}
	if _, err := SumBound(Triangle(10), 9); err == nil {
		t.Error("out-of-range aggregate relation accepted")
	}
	g2 := Triangle(10)
	g2.Rels[0].Sum = 0
	if b, err := SumBound(g2, 0); err != nil || b != 0 {
		t.Errorf("zero sum: %v %v", b, err)
	}
}

func TestCoverValid(t *testing.T) {
	g := Triangle(10)
	if (Cover{0.5, 0.5}).Valid(g) {
		t.Error("short cover accepted")
	}
	if (Cover{-1, 1, 1}).Valid(g) {
		t.Error("negative cover accepted")
	}
	if (Cover{0.1, 0.1, 0.1}).Valid(g) {
		t.Error("under-covering accepted")
	}
	if !(Cover{1, 1, 1}).Valid(g) {
		t.Error("integral cover rejected")
	}
}

func TestMaxFrequency(t *testing.T) {
	if mf := MaxFrequency(nil); mf != 0 {
		t.Errorf("empty mf = %v", mf)
	}
	if mf := MaxFrequency([]int64{1, 2, 2, 3, 2}); mf != 3 {
		t.Errorf("mf = %v, want 3", mf)
	}
}

func TestElasticInstanceVariant(t *testing.T) {
	g := Triangle(100)
	// Observed max frequency 3 on S and T tightens the cascade.
	b := ElasticCountBoundInstance(g, []float64{0, 3, 3})
	if b != 100*3*3 {
		t.Errorf("instance elastic = %v, want 900", b)
	}
	// Without observations it matches the worst case.
	if b := ElasticCountBoundInstance(g, nil); b != ElasticCountBound(g) {
		t.Errorf("no-mf variant = %v, want %v", b, ElasticCountBound(g))
	}
	if b := ElasticCountBoundInstance(Graph{}, nil); b != 0 {
		t.Errorf("empty graph = %v", b)
	}
}

// TestFECBoundIsSoundOnRandomInstances materializes random two-relation
// joins and verifies the FEC bound really contains the true join size and
// SUM.
func TestFECBoundIsSoundOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		nR := 1 + rng.Intn(50)
		nS := 1 + rng.Intn(50)
		keys := 1 + rng.Intn(10)
		type pair struct{ k, v int }
		R := make([]pair, nR)
		S := make([]pair, nS)
		sumR := 0.0
		for i := range R {
			R[i] = pair{rng.Intn(keys), rng.Intn(100)}
			sumR += float64(R[i].v)
		}
		for i := range S {
			S[i] = pair{rng.Intn(keys), rng.Intn(100)}
		}
		// True join on k.
		joinCount := 0
		joinSum := 0.0
		for _, r := range R {
			for _, s := range S {
				if r.k == s.k {
					joinCount++
					joinSum += float64(r.v)
				}
			}
		}
		g := Graph{Rels: []Relation{
			{Name: "R", Attrs: []string{"k", "v"}, Count: float64(nR), Sum: sumR},
			{Name: "S", Attrs: []string{"k", "w"}, Count: float64(nS)},
		}}
		cb, err := CountBound(g)
		if err != nil {
			t.Fatal(err)
		}
		if float64(joinCount) > cb+1e-9 {
			t.Fatalf("trial %d: true count %d exceeds bound %v", trial, joinCount, cb)
		}
		sb, err := SumBound(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if joinSum > sb+1e-9 {
			t.Fatalf("trial %d: true sum %v exceeds bound %v", trial, joinSum, sb)
		}
	}
}

// TestTriangleBoundSoundOnRandomGraphs validates the N^1.5 bound against
// actual triangle counts of random directed graphs.
func TestTriangleBoundSoundOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(80)
		verts := 10
		type edge struct{ a, b int }
		edges := make([]edge, n)
		for i := range edges {
			edges[i] = edge{rng.Intn(verts), rng.Intn(verts)}
		}
		// Count directed triangles R(a,b) S(b,c) T(c,a) over the same edge
		// set used three times.
		count := 0
		for _, e1 := range edges {
			for _, e2 := range edges {
				if e2.a != e1.b {
					continue
				}
				for _, e3 := range edges {
					if e3.a == e2.b && e3.b == e1.a {
						count++
					}
				}
			}
		}
		b, err := CountBound(Triangle(float64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if float64(count) > b+1e-9 {
			t.Fatalf("trial %d: %d triangles exceed bound %v (n=%d)", trial, count, b, n)
		}
	}
}

func TestProductSet(t *testing.T) {
	sa := domain.NewSchema(domain.Attr{Name: "x", Kind: domain.Integral, Domain: domain.NewInterval(0, 9)})
	sb := domain.NewSchema(domain.Attr{Name: "y", Kind: domain.Integral, Domain: domain.NewInterval(0, 9)})
	a := core.NewSet(sa)
	a.MustAdd(core.MustPC(predicate.NewBuilder(sa).Range("x", 0, 4).Build(),
		map[string]domain.Interval{"x": domain.NewInterval(0, 4)}, 1, 3))
	b := core.NewSet(sb)
	b.MustAdd(core.MustPC(predicate.NewBuilder(sb).Range("y", 0, 9).Build(),
		map[string]domain.Interval{"y": domain.NewInterval(0, 9)}, 2, 5))

	prod, schema, err := Product(a, b, "R", "S")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 2 {
		t.Fatalf("product schema len = %d", schema.Len())
	}
	if _, ok := schema.Index("R.x"); !ok {
		t.Error("missing prefixed attribute R.x")
	}
	if prod.Len() != 1 {
		t.Fatalf("product PCs = %d, want 1", prod.Len())
	}
	pc := prod.PCs()[0]
	if pc.KLo != 2 || pc.KHi != 15 {
		t.Errorf("product frequency = [%d, %d], want [2, 15]", pc.KLo, pc.KHi)
	}
	// Product engine bounds the join COUNT by 15 (the Cartesian bound).
	e := core.NewEngine(prod, nil, core.Options{})
	r, err := e.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hi != 15 {
		t.Errorf("product COUNT upper = %v, want 15", r.Hi)
	}
	// Same prefixes rejected.
	if _, _, err := Product(a, b, "R", "R"); err == nil {
		t.Error("identical prefixes accepted")
	}
}
