package join

import "math"

// This file implements the elastic-sensitivity baseline used in the paper's
// Figure 12 comparison (Johnson, Near, Song: "Towards practical differential
// privacy for SQL queries", VLDB 2018).
//
// Elastic sensitivity bounds how much a join's output can change per input
// row by cascading max-frequency factors through the join tree. Because it
// must hold for every database at any distance from the current instance,
// intermediate max-frequencies are taken at their worst case — the full
// relation size — which degenerates the output-size bound to the Cartesian
// product, exactly the behaviour the paper reports ("elastic sensitivity
// always assumes the worst-case scenario thus generates the bound for a
// Cartesian product").
//
// Substitution note: the authors ran the reference elastic-
// sensitivity implementation; we re-derive its bound analytically. For the
// Figure 12 workloads the two coincide: a left-deep cascade with worst-case
// max-frequencies over n-row relations yields N³ for the triangle query and
// N⁵ for the 5-chain. An instance-based variant (using observed max
// frequencies) is provided for ablation.

// ElasticCountBound returns the elastic-sensitivity style upper bound on the
// join output size: a left-deep cascade where each joined relation can
// multiply the intermediate result by its worst-case max frequency (its full
// cardinality).
func ElasticCountBound(g Graph) float64 {
	if len(g.Rels) == 0 {
		return 0
	}
	bound := math.Max(g.Rels[0].Count, 0)
	for _, r := range g.Rels[1:] {
		// Worst-case max frequency of the join key in r is |r| itself: every
		// row of r may carry the same key, so each intermediate row matches
		// all of r.
		bound *= math.Max(r.Count, 0)
	}
	return bound
}

// MaxFrequency returns the highest multiplicity of any key in keys — the
// instance-level max-frequency statistic elastic sensitivity is built from.
func MaxFrequency(keys []int64) float64 {
	if len(keys) == 0 {
		return 0
	}
	counts := make(map[int64]int, len(keys))
	mf := 0
	for _, k := range keys {
		counts[k]++
		if counts[k] > mf {
			mf = counts[k]
		}
	}
	return float64(mf)
}

// ElasticCountBoundInstance is the ablation variant using observed max
// frequencies per joined relation instead of the worst case. mfs[i] is the
// observed max frequency of relation i's join key (ignored for i = 0).
// It is NOT a hard bound across all databases — only across databases whose
// max frequencies do not exceed the observed ones.
func ElasticCountBoundInstance(g Graph, mfs []float64) float64 {
	if len(g.Rels) == 0 {
		return 0
	}
	bound := math.Max(g.Rels[0].Count, 0)
	for i, r := range g.Rels[1:] {
		mf := math.Max(r.Count, 0)
		if i+1 < len(mfs) && mfs[i+1] > 0 {
			mf = math.Min(mf, mfs[i+1])
		}
		bound *= mf
	}
	return bound
}
