// Package join bounds aggregate queries with inner natural-join conditions
// over predicate-constrained relations (Section 5 of the paper).
//
// Two bounding methods are provided:
//
//   - The naive method (Section 5.1): treat the join as a Cartesian product
//     of per-relation bounds. Sound but extremely loose for equality joins —
//     O(N³) for the triangle query.
//
//   - The fractional-edge-cover method (Section 5.2): using Friedgut's
//     Generalized Weighted Entropy inequality, SUM(A) over the natural join
//     is bounded by SUM(A) on A's relation times Π_{i≠a} COUNT(Rᵢ)^{cᵢ} for
//     any fractional edge cover c with c_a = 1. Minimizing the log of the
//     right-hand side subject to the cover constraints is a linear program
//     (solved with internal/lp), giving the tightest such bound — O(N^{3/2})
//     for the triangle query, the worst-case-optimal-join exponent.
//
// The elastic-sensitivity baseline of the paper's Figure 12 comparison
// (Johnson et al., "Towards practical differential privacy for SQL
// queries") is in elastic.go.
package join

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pcbound/internal/lp"
)

// Relation describes one joined relation by its join attributes and the
// hard bounds obtained from its predicate-constraint set.
type Relation struct {
	// Name identifies the relation in error messages.
	Name string
	// Attrs are the relation's attribute names; relations sharing an
	// attribute name natural-join on it.
	Attrs []string
	// Count is a hard upper bound on the relation's cardinality (e.g. the
	// Hi endpoint of a core COUNT range).
	Count float64
	// Sum is a hard upper bound on SUM(A) over the relation, used only for
	// the relation carrying the aggregated attribute.
	Sum float64
}

// Graph is a natural-join query graph (a hypergraph whose vertices are
// attributes and whose edges are relations).
type Graph struct {
	Rels []Relation
}

// Attrs returns the sorted set of all attribute names in the graph.
func (g Graph) Attrs() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range g.Rels {
		for _, a := range r.Attrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Cover is a fractional edge cover: one non-negative weight per relation
// such that every attribute's incident weights sum to at least 1.
type Cover []float64

// FractionalEdgeCover solves the LP
//
//	minimize   Σ cᵢ·ln(Nᵢ)
//	subject to Σ_{i: s ∈ Rᵢ} cᵢ ≥ 1  for every attribute s,
//	           c_fix = 1 (if fix >= 0), c ≥ 0,
//
// returning the optimal cover. Counts below 1 are clamped to 1 (ln N would
// go negative; a relation bounded by fewer than one row forces the whole
// join toward zero and is handled by the callers).
func FractionalEdgeCover(g Graph, fix int) (Cover, error) {
	n := len(g.Rels)
	if n == 0 {
		return nil, errors.New("join: empty query graph")
	}
	if fix >= n {
		return nil, fmt.Errorf("join: fixed relation %d out of range", fix)
	}
	obj := make([]float64, n)
	for i, r := range g.Rels {
		obj[i] = math.Log(math.Max(r.Count, 1))
	}
	p := lp.NewMinimize(obj)
	for _, a := range g.Attrs() {
		var idx []int
		var val []float64
		for i, r := range g.Rels {
			for _, ra := range r.Attrs {
				if ra == a {
					idx = append(idx, i)
					val = append(val, 1)
					break
				}
			}
		}
		if err := p.AddSparse(idx, val, lp.GE, 1); err != nil {
			return nil, err
		}
	}
	if fix >= 0 {
		if err := p.AddSparse([]int{fix}, []float64{1}, lp.EQ, 1); err != nil {
			return nil, err
		}
	}
	sol := lp.Solve(p)
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("join: edge cover LP %v", sol.Status)
	}
	return Cover(sol.X), nil
}

// Valid reports whether the cover satisfies all attribute constraints of g.
func (c Cover) Valid(g Graph) bool {
	if len(c) != len(g.Rels) {
		return false
	}
	for _, v := range c {
		if v < -1e-9 {
			return false
		}
	}
	for _, a := range g.Attrs() {
		total := 0.0
		for i, r := range g.Rels {
			for _, ra := range r.Attrs {
				if ra == a {
					total += c[i]
					break
				}
			}
		}
		if total < 1-1e-6 {
			return false
		}
	}
	return true
}

// CountBound returns the fractional-edge-cover (AGM) upper bound on the
// join's output cardinality: Π COUNT(Rᵢ)^{cᵢ} for the optimal cover.
func CountBound(g Graph) (float64, error) {
	for _, r := range g.Rels {
		if r.Count <= 0 {
			return 0, nil
		}
	}
	c, err := FractionalEdgeCover(g, -1)
	if err != nil {
		return 0, err
	}
	logB := 0.0
	for i, r := range g.Rels {
		logB += c[i] * math.Log(math.Max(r.Count, 1))
	}
	return math.Exp(logB), nil
}

// SumBound returns the GWE upper bound on SUM(A) over the natural join,
// where A belongs to relation aIdx with per-relation bound g.Rels[aIdx].Sum:
//
//	SUM(A)_⋈  ≤  SUM(A)_{R_a} × Π_{i≠a} COUNT(Rᵢ)^{cᵢ}
//
// with c the tightest fractional edge cover having c_a = 1. A non-positive
// Sum or Count bound short-circuits to 0 (no positive mass can flow through
// the join).
func SumBound(g Graph, aIdx int) (float64, error) {
	if aIdx < 0 || aIdx >= len(g.Rels) {
		return 0, fmt.Errorf("join: aggregate relation %d out of range", aIdx)
	}
	if g.Rels[aIdx].Sum <= 0 {
		return 0, nil
	}
	for _, r := range g.Rels {
		if r.Count <= 0 {
			return 0, nil
		}
	}
	c, err := FractionalEdgeCover(g, aIdx)
	if err != nil {
		return 0, err
	}
	logB := math.Log(g.Rels[aIdx].Sum)
	for i, r := range g.Rels {
		if i == aIdx {
			continue
		}
		logB += c[i] * math.Log(math.Max(r.Count, 1))
	}
	return math.Exp(logB), nil
}

// CartesianCount is the naive Section 5.1 bound: the product of relation
// cardinalities.
func CartesianCount(g Graph) float64 {
	b := 1.0
	for _, r := range g.Rels {
		b *= math.Max(r.Count, 0)
	}
	return b
}

// CartesianSum is the naive SUM bound: SUM on the aggregate relation times
// the product of the other cardinalities.
func CartesianSum(g Graph, aIdx int) float64 {
	b := math.Max(g.Rels[aIdx].Sum, 0)
	for i, r := range g.Rels {
		if i != aIdx {
			b *= math.Max(r.Count, 0)
		}
	}
	return b
}

// Triangle builds the triangle-counting query graph R(a,b) ⋈ S(b,c) ⋈ T(c,a)
// with each relation bounded by n rows (Section 6.6.3).
func Triangle(n float64) Graph {
	return Graph{Rels: []Relation{
		{Name: "R", Attrs: []string{"a", "b"}, Count: n},
		{Name: "S", Attrs: []string{"b", "c"}, Count: n},
		{Name: "T", Attrs: []string{"c", "a"}, Count: n},
	}}
}

// Chain builds the acyclic chain R1(x1,x2) ⋈ R2(x2,x3) ⋈ … ⋈ Rk(xk,xk+1)
// with each relation bounded by n rows (Section 6.6.3).
func Chain(k int, n float64) Graph {
	g := Graph{}
	for i := 1; i <= k; i++ {
		g.Rels = append(g.Rels, Relation{
			Name:  fmt.Sprintf("R%d", i),
			Attrs: []string{fmt.Sprintf("x%d", i), fmt.Sprintf("x%d", i+1)},
			Count: n,
		})
	}
	return g
}

// Clique builds the k-clique counting query graph (each relation covers one
// (k-1)-subset of the k attributes, as in the paper's 4-clique example).
func Clique(k int, n float64) Graph {
	if k < 3 {
		k = 3
	}
	attrs := make([]string, k)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("v%d", i+1)
	}
	g := Graph{}
	for i := 0; i < k; i++ {
		// Relation i contains all attributes except attrs[i].
		var as []string
		for j, a := range attrs {
			if j != i {
				as = append(as, a)
			}
		}
		g.Rels = append(g.Rels, Relation{Name: fmt.Sprintf("E%d", i+1), Attrs: as, Count: n})
	}
	return g
}
