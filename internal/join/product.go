package join

import (
	"errors"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
)

// Product implements the naive multi-relation method of Section 5.1: the
// direct product of two predicate-constraint sets,
//
//	πₐ × π_b = (ψₐ ∧ ψ_b, [νₐ ν_b], κₐ ⊗ κ_b),
//
// over the concatenated schema (attributes prefixed with each relation's
// name). The resulting set bounds any inner join of the two relations,
// since every join output row is a product row; the bound is loose for
// equality joins (use the fractional-edge-cover bound instead).
func Product(a, b *core.Set, prefixA, prefixB string) (*core.Set, *domain.Schema, error) {
	if prefixA == prefixB {
		return nil, nil, errors.New("join: product prefixes must differ")
	}
	sa, sb := a.Schema(), b.Schema()
	attrs := make([]domain.Attr, 0, sa.Len()+sb.Len())
	for i := 0; i < sa.Len(); i++ {
		at := sa.Attr(i)
		at.Name = prefixA + "." + at.Name
		attrs = append(attrs, at)
	}
	for i := 0; i < sb.Len(); i++ {
		at := sb.Attr(i)
		at.Name = prefixB + "." + at.Name
		attrs = append(attrs, at)
	}
	schema := domain.NewSchema(attrs...)

	concat := func(x, y domain.Box) domain.Box {
		out := make(domain.Box, 0, len(x)+len(y))
		out = append(out, x...)
		out = append(out, y...)
		return out
	}

	set := core.NewSet(schema)
	for _, pa := range a.PCs() {
		for _, pb := range b.PCs() {
			pc := core.PC{
				Pred:   predicate.FromBox(schema, concat(pa.Pred.Box(), pb.Pred.Box())),
				Values: concat(pa.Values, pb.Values),
				KLo:    pa.KLo * pb.KLo,
				KHi:    pa.KHi * pb.KHi,
			}
			if err := set.Add(pc); err != nil {
				return nil, nil, err
			}
		}
	}
	return set, schema, nil
}
