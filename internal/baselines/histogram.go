package baselines

import (
	"math"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/stats"
	"pcbound/internal/table"
)

// Histogram is the equi-width histogram baseline (Section 6.1.3): one 1-D
// equi-width histogram per attribute over the missing rows, combined across
// attributes with the standard independence assumption. Bounds derived from
// each marginal are hard, but the independence combination is not — on
// correlated data the histogram fails, exactly as in the paper's Table 2.
type Histogram struct {
	Label string
	// Frechet switches the multi-attribute combination from the independence
	// assumption (the paper's Table 2 variant, which can fail on correlated
	// data) to Fréchet bounds (min of upper fractions / Bonferroni lower),
	// which are hard given hard marginals — the behaviour Figures 3 and 4
	// report ("Histograms do not fail if they have accurate constraints").
	Frechet bool
	schema  *domain.Schema
	total   float64
	margins map[string]*margin
	// Value range of the aggregate attribute per aggregate-attr bucket is
	// carried by its own margin.
}

type margin struct {
	lo, width float64
	counts    []float64
	// mins/maxs track per-bucket value extremes (equal to the bucket edges
	// for the bucketed attribute itself, tighter when data is sparse).
	mins, maxs []float64
}

// NewHistogram builds marginal histograms with the given bucket count over
// every listed attribute.
func NewHistogram(label string, missing *table.T, attrs []string, buckets int) *Histogram {
	h := &Histogram{
		Label:   label,
		schema:  missing.Schema(),
		total:   float64(missing.Len()),
		margins: make(map[string]*margin, len(attrs)),
	}
	for _, a := range attrs {
		ai := h.schema.MustIndex(a)
		dom := h.schema.Attr(ai).Domain
		m := &margin{
			lo:     dom.Lo,
			width:  dom.Width() / float64(buckets),
			counts: make([]float64, buckets),
			mins:   make([]float64, buckets),
			maxs:   make([]float64, buckets),
		}
		for b := range m.mins {
			m.mins[b] = math.Inf(1)
			m.maxs[b] = math.Inf(-1)
		}
		for i := 0; i < missing.Len(); i++ {
			v := missing.Row(i)[ai]
			b := m.bucket(v)
			m.counts[b]++
			if v < m.mins[b] {
				m.mins[b] = v
			}
			if v > m.maxs[b] {
				m.maxs[b] = v
			}
		}
		h.margins[a] = m
	}
	return h
}

func (m *margin) bucket(v float64) int {
	if m.width <= 0 {
		return 0
	}
	b := int((v - m.lo) / m.width)
	if b < 0 {
		b = 0
	}
	if b >= len(m.counts) {
		b = len(m.counts) - 1
	}
	return b
}

// fraction returns the (lower, upper) bounds on the fraction of rows whose
// attribute lies in iv, from the marginal alone: buckets fully inside count
// toward both, partially overlapping buckets only toward the upper bound.
func (m *margin) fraction(iv domain.Interval, total float64) (float64, float64) {
	if total == 0 {
		return 0, 0
	}
	var lo, hi float64
	for b, c := range m.counts {
		if c == 0 {
			continue
		}
		blo := m.lo + float64(b)*m.width
		bhi := blo + m.width
		bucket := domain.Interval{Lo: blo, Hi: bhi}
		if !bucket.Overlaps(iv) {
			continue
		}
		hi += c
		if iv.ContainsInterval(bucket) {
			lo += c
		}
	}
	return lo / total, hi / total
}

// Name implements Estimator.
func (h *Histogram) Name() string { return h.Label }

// Count implements Estimator: combine per-attribute fraction bounds, either
// multiplicatively (independence) or via Fréchet bounds.
func (h *Histogram) Count(where *predicate.P) Estimate {
	var los, his []float64
	if where != nil {
		for a, m := range h.margins {
			ai := h.schema.MustIndex(a)
			iv := where.Box()[ai]
			if iv == h.schema.Attr(ai).Domain {
				continue
			}
			l, u := m.fraction(iv, h.total)
			los = append(los, l)
			his = append(his, u)
		}
	}
	fLo, fHi := 1.0, 1.0
	if h.Frechet {
		// Hard bounds: P(∩Aⱼ) <= min P(Aⱼ) and >= Σ P(Aⱼ) - (m-1).
		bonferroni := 1.0 - float64(len(los))
		for i := range los {
			bonferroni += los[i]
			fHi = math.Min(fHi, his[i])
		}
		fLo = math.Max(0, bonferroni)
	} else {
		for i := range los {
			fLo *= los[i]
			fHi *= his[i]
		}
	}
	return Estimate{Lo: fLo * h.total, Hi: fHi * h.total}
}

// Sum implements Estimator: count bounds times the aggregate attribute's
// value bounds within the query region.
func (h *Histogram) Sum(attr string, where *predicate.P) Estimate {
	cnt := h.Count(where)
	m, ok := h.margins[attr]
	if !ok {
		// No marginal on the aggregate: fall back to the domain.
		dom := h.schema.Attr(h.schema.MustIndex(attr)).Domain
		return spanEstimate(cnt, dom.Lo, dom.Hi)
	}
	// Value bounds: extremes over buckets overlapping the query's constraint
	// on attr (the whole histogram when unconstrained).
	iv := domain.Full
	if where != nil {
		iv = where.Box()[h.schema.MustIndex(attr)]
	}
	vlo, vhi := math.Inf(1), math.Inf(-1)
	for b, c := range m.counts {
		if c == 0 {
			continue
		}
		bucket := domain.Interval{Lo: m.lo + float64(b)*m.width, Hi: m.lo + float64(b+1)*m.width}
		if !bucket.Overlaps(iv) {
			continue
		}
		vlo = math.Min(vlo, m.mins[b])
		vhi = math.Max(vhi, m.maxs[b])
	}
	if math.IsInf(vlo, 1) {
		return Estimate{Lo: 0, Hi: 0}
	}
	return spanEstimate(cnt, vlo, vhi)
}

// spanEstimate bounds a sum of cnt rows each valued in [vlo, vhi].
func spanEstimate(cnt Estimate, vlo, vhi float64) Estimate {
	lo := cnt.Lo * vlo
	if vlo < 0 {
		lo = cnt.Hi * vlo
	}
	hi := cnt.Hi * vhi
	if vhi < 0 {
		hi = cnt.Lo * vhi
	}
	return Estimate{Lo: lo, Hi: hi}
}

// ExtrapolateSum is the Figure 1 baseline: scale the present rows' sum by
// the known total/present row ratio. It returns a point estimate, not an
// interval — its relative error under correlated missingness motivates the
// whole framework.
func ExtrapolateSum(present *table.T, attr string, where *predicate.P, totalRows int) float64 {
	pc := present.Count(where)
	if pc == 0 {
		return 0
	}
	frac := float64(present.Len()) / float64(totalRows)
	if frac <= 0 {
		return 0
	}
	return present.Sum(attr, where) / frac
}

// RelativeError returns |est-truth| / |truth| (infinite when truth is 0 and
// est is not).
func RelativeError(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// OverEstimationRate returns the paper's tightness metric: upper bound over
// true value (clamped at 1 from below, since a bound cannot be tighter than
// the truth; values below 1 indicate a failure which is tracked separately).
func OverEstimationRate(hi, truth float64) float64 {
	if truth <= 0 {
		return 1
	}
	return math.Max(1, hi/truth)
}

// MedianOverEstimation aggregates over-estimation rates as the paper plots
// them.
func MedianOverEstimation(rates []float64) float64 { return stats.Median(rates) }
