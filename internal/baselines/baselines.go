// Package baselines implements the competitor estimators of the paper's
// evaluation (Section 6.1): uniform and stratified sampling with parametric
// (CLT) and non-parametric (Hoeffding) confidence intervals, equi-width
// histograms with cross-attribute independence, a Gaussian-mixture
// generative model, and simple extrapolation.
//
// Every estimator answers COUNT(*) and SUM(attr) queries about the missing
// rows with an interval [Lo, Hi]; the experiment harness measures how often
// the true value escapes the interval (failure rate) and how loose the
// interval is (over-estimation rate).
package baselines

import (
	"math"
	"math/rand"

	"pcbound/internal/core"
	"pcbound/internal/predicate"
	"pcbound/internal/stats"
	"pcbound/internal/table"
)

// Estimate is an estimated result interval.
type Estimate struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the interval.
func (e Estimate) Contains(v float64) bool { return v >= e.Lo-1e-9 && v <= e.Hi+1e-9 }

// Estimator answers aggregate queries about the missing rows.
type Estimator interface {
	Name() string
	Count(where *predicate.P) Estimate
	Sum(attr string, where *predicate.P) Estimate
}

// Concurrent marks estimators whose Count/Sum are safe for concurrent use,
// so the experiment harness may fan a workload out across goroutines.
// Estimators not implementing it are evaluated sequentially (the samplers
// carry mutable state such as noise RNGs).
type Concurrent interface {
	ConcurrentSafe() bool
}

// ConcurrentSafe reports whether the estimator declares itself safe for
// concurrent evaluation.
func ConcurrentSafe(e Estimator) bool {
	c, ok := e.(Concurrent)
	return ok && c.ConcurrentSafe()
}

// PCEstimator adapts a predicate-constraint engine to the Estimator
// interface, so the framework slots into the same harness as the baselines.
type PCEstimator struct {
	Label  string
	Engine *core.Engine
}

// Name implements Estimator.
func (p *PCEstimator) Name() string { return p.Label }

// ConcurrentSafe implements Concurrent: the engine is safe for concurrent
// Bound calls.
func (p *PCEstimator) ConcurrentSafe() bool { return true }

// Count implements Estimator.
func (p *PCEstimator) Count(where *predicate.P) Estimate {
	r, err := p.Engine.Count(where)
	if err != nil {
		return Estimate{Lo: math.Inf(-1), Hi: math.Inf(1)}
	}
	return Estimate{Lo: r.Lo, Hi: r.Hi}
}

// Sum implements Estimator.
func (p *PCEstimator) Sum(attr string, where *predicate.P) Estimate {
	r, err := p.Engine.Sum(attr, where)
	if err != nil {
		return Estimate{Lo: math.Inf(-1), Hi: math.Inf(1)}
	}
	return Estimate{Lo: r.Lo, Hi: r.Hi}
}

// UniformSample is the US-k baseline: an unbiased sample of the missing rows
// plus knowledge of the total number of missing rows, extrapolated with a
// confidence interval (Section 6.1.1).
type UniformSample struct {
	Label string
	// Parametric selects the CLT interval (US-kp); otherwise the Hoeffding
	// non-parametric interval of Hellerstein et al. is used (US-kn).
	Parametric bool
	// Confidence is the interval's nominal coverage, e.g. 0.9999.
	Confidence float64
	// SpreadNoise, when positive, perturbs the sample-estimated value spread
	// with Gaussian noise of this standard deviation before computing the
	// non-parametric interval. Figure 6 uses it to corrupt the sampling
	// bound "by mis-estimating the spread of values (which is functionally
	// equivalent to an inaccurate PC)".
	SpreadNoise float64

	sample   *table.T
	total    float64 // known number of missing rows
	noiseRng *rand.Rand
}

// NewUniformSample draws sampleSize rows uniformly without replacement from
// the missing table.
func NewUniformSample(label string, missing *table.T, sampleSize int, parametric bool, confidence float64, rng *rand.Rand) *UniformSample {
	n := missing.Len()
	if sampleSize > n {
		sampleSize = n
	}
	perm := rng.Perm(n)
	st := table.New(missing.Schema())
	for _, i := range perm[:sampleSize] {
		st.MustAppend(missing.Row(i))
	}
	return &UniformSample{
		Label:      label,
		Parametric: parametric,
		Confidence: confidence,
		sample:     st,
		total:      float64(n),
		noiseRng:   rand.New(rand.NewSource(rng.Int63())),
	}
}

// Name implements Estimator.
func (u *UniformSample) Name() string { return u.Label }

// Count implements Estimator: estimate N·p̂ with a proportion interval.
func (u *UniformSample) Count(where *predicate.P) Estimate {
	n := float64(u.sample.Len())
	if n == 0 {
		return Estimate{Lo: 0, Hi: u.total}
	}
	k := u.sample.Count(where)
	p := k / n
	var eps float64
	if u.Parametric {
		z := stats.NormalQuantile(1 - (1-u.Confidence)/2)
		eps = z * math.Sqrt(p*(1-p)/n)
	} else {
		eps = stats.HoeffdingEpsilon(int(n), 1, 1-u.Confidence)
	}
	lo := math.Max(0, (p-eps)*u.total)
	hi := math.Min(u.total, (p+eps)*u.total)
	return Estimate{Lo: lo, Hi: hi}
}

// Sum implements Estimator: estimate N·mean(x) where x is the value for
// matching rows and 0 otherwise.
func (u *UniformSample) Sum(attr string, where *predicate.P) Estimate {
	n := u.sample.Len()
	if n == 0 {
		return Estimate{Lo: 0, Hi: 0}
	}
	ai := u.sample.Schema().MustIndex(attr)
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		r := u.sample.Row(i)
		if where == nil || where.Eval(r) {
			xs[i] = r[ai]
		}
	}
	m := stats.Mean(xs)
	var eps float64
	if u.Parametric {
		z := stats.NormalQuantile(1 - (1-u.Confidence)/2)
		eps = z * stats.StdDev(xs) / math.Sqrt(float64(n))
	} else {
		// The non-parametric interval needs the value range, which must
		// itself be estimated from the sample — the fallibility the paper
		// highlights ("a small number of example rows fail to accurately
		// capture the spread").
		mn, mx := stats.MinMax(xs)
		if u.SpreadNoise > 0 && u.noiseRng != nil {
			mn += u.noiseRng.NormFloat64() * u.SpreadNoise
			mx += u.noiseRng.NormFloat64() * u.SpreadNoise
			if mx < mn {
				mn, mx = mx, mn
			}
		}
		eps = stats.HoeffdingEpsilon(n, mx-mn, 1-u.Confidence)
	}
	return Estimate{Lo: (m - eps) * u.total, Hi: (m + eps) * u.total}
}

// Stratum is one stratified-sampling stratum: a region with a known number
// of missing rows and a sample of them.
type Stratum struct {
	Pred   *predicate.P
	Total  float64
	Sample *table.T
}

// StratifiedSample is the ST-k baseline: per-stratum samples combined with
// per-stratum extrapolation (Section 6.1.1). Strata typically come from the
// same partition the PCs use.
type StratifiedSample struct {
	Label      string
	Parametric bool
	Confidence float64
	strata     []Stratum
}

// NewStratifiedSample partitions the missing rows by the given predicates
// (which should be disjoint) and samples proportionally, at least one row
// per non-empty stratum, totalling roughly sampleSize.
func NewStratifiedSample(label string, missing *table.T, strata []*predicate.P, sampleSize int, parametric bool, confidence float64, rng *rand.Rand) *StratifiedSample {
	s := &StratifiedSample{Label: label, Parametric: parametric, Confidence: confidence}
	n := float64(missing.Len())
	for _, pred := range strata {
		part := missing.Filter(pred)
		if part.Len() == 0 {
			continue
		}
		k := int(math.Round(float64(sampleSize) * float64(part.Len()) / math.Max(n, 1)))
		if k < 1 {
			k = 1
		}
		if k > part.Len() {
			k = part.Len()
		}
		perm := rng.Perm(part.Len())
		sm := table.New(missing.Schema())
		for _, i := range perm[:k] {
			sm.MustAppend(part.Row(i))
		}
		s.strata = append(s.strata, Stratum{Pred: pred, Total: float64(part.Len()), Sample: sm})
	}
	return s
}

// Name implements Estimator.
func (s *StratifiedSample) Name() string { return s.Label }

// Count implements Estimator.
func (s *StratifiedSample) Count(where *predicate.P) Estimate {
	var lo, hi float64
	var center, varSum float64
	z := stats.NormalQuantile(1 - (1-s.Confidence)/2)
	for _, st := range s.strata {
		n := float64(st.Sample.Len())
		k := st.Sample.Count(where)
		p := k / n
		center += p * st.Total
		if s.Parametric {
			varSum += st.Total * st.Total * p * (1 - p) / n
		} else {
			eps := stats.HoeffdingEpsilon(int(n), 1, 1-s.Confidence)
			lo += math.Max(0, p-eps) * st.Total
			hi += math.Min(1, p+eps) * st.Total
		}
	}
	if s.Parametric {
		spread := z * math.Sqrt(varSum)
		return Estimate{Lo: math.Max(0, center-spread), Hi: center + spread}
	}
	return Estimate{Lo: lo, Hi: hi}
}

// Sum implements Estimator.
func (s *StratifiedSample) Sum(attr string, where *predicate.P) Estimate {
	var lo, hi float64
	var center, varSum float64
	z := stats.NormalQuantile(1 - (1-s.Confidence)/2)
	for _, st := range s.strata {
		n := st.Sample.Len()
		ai := st.Sample.Schema().MustIndex(attr)
		xs := make([]float64, n)
		for i := 0; i < n; i++ {
			r := st.Sample.Row(i)
			if where == nil || where.Eval(r) {
				xs[i] = r[ai]
			}
		}
		m := stats.Mean(xs)
		center += m * st.Total
		if s.Parametric {
			sd := stats.StdDev(xs)
			varSum += st.Total * st.Total * sd * sd / float64(n)
		} else {
			mn, mx := stats.MinMax(xs)
			eps := stats.HoeffdingEpsilon(n, mx-mn, 1-s.Confidence)
			lo += (m - eps) * st.Total
			hi += (m + eps) * st.Total
		}
	}
	if s.Parametric {
		spread := z * math.Sqrt(varSum)
		return Estimate{Lo: center - spread, Hi: center + spread}
	}
	return Estimate{Lo: lo, Hi: hi}
}
