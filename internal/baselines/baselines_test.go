package baselines

import (
	"math/rand"
	"testing"

	"pcbound/internal/data"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/table"
)

func missingIntel(t *testing.T, n int, frac float64, seed int64) (*table.T, *table.T) {
	t.Helper()
	tb := data.Intel(n, seed)
	return tb.RemoveTopFraction("light", frac)
}

func TestUniformSampleCovers(t *testing.T) {
	_, missing := missingIntel(t, 4000, 0.3, 1)
	rng := rand.New(rand.NewSource(2))
	u := NewUniformSample("US", missing, 400, false, 0.9999, rng)
	if u.Name() != "US" {
		t.Error("name")
	}
	// Full-domain queries: generous intervals should cover the truth.
	truthCount := float64(missing.Len())
	if est := u.Count(nil); !est.Contains(truthCount) {
		t.Errorf("count %v outside %v", truthCount, est)
	}
	truthSum := missing.Sum("light", nil)
	if est := u.Sum("light", nil); !est.Contains(truthSum) {
		t.Errorf("sum %v outside [%v, %v]", truthSum, est.Lo, est.Hi)
	}
	// Count bounds stay within [0, N].
	s := missing.Schema()
	narrow := predicate.NewBuilder(s).Eq("device", 1).Build()
	est := u.Count(narrow)
	if est.Lo < 0 || est.Hi > truthCount {
		t.Errorf("count interval [%v, %v] escapes [0, %v]", est.Lo, est.Hi, truthCount)
	}
}

func TestParametricNarrowerThanNonParametric(t *testing.T) {
	_, missing := missingIntel(t, 4000, 0.3, 3)
	rng1 := rand.New(rand.NewSource(4))
	rng2 := rand.New(rand.NewSource(4))
	par := NewUniformSample("p", missing, 300, true, 0.99, rng1)
	non := NewUniformSample("n", missing, 300, false, 0.99, rng2)
	ep := par.Sum("light", nil)
	en := non.Sum("light", nil)
	if ep.Hi-ep.Lo >= en.Hi-en.Lo {
		t.Errorf("parametric width %v should be narrower than non-parametric %v",
			ep.Hi-ep.Lo, en.Hi-en.Lo)
	}
}

func TestSampleConfidenceMonotone(t *testing.T) {
	_, missing := missingIntel(t, 3000, 0.3, 5)
	widths := []float64{}
	for _, conf := range []float64{0.8, 0.95, 0.9999} {
		rng := rand.New(rand.NewSource(6))
		u := NewUniformSample("u", missing, 200, false, conf, rng)
		e := u.Sum("light", nil)
		widths = append(widths, e.Hi-e.Lo)
	}
	if !(widths[0] < widths[1] && widths[1] < widths[2]) {
		t.Errorf("interval width should grow with confidence: %v", widths)
	}
}

func TestUniformSampleDegenerate(t *testing.T) {
	s := data.Intel(10, 1).Schema()
	empty := table.New(s)
	rng := rand.New(rand.NewSource(1))
	u := NewUniformSample("u", empty, 10, false, 0.99, rng)
	if est := u.Count(nil); est.Lo != 0 || est.Hi != 0 {
		t.Errorf("empty missing table count = %+v", est)
	}
	if est := u.Sum("light", nil); est.Lo != 0 || est.Hi != 0 {
		t.Errorf("empty missing table sum = %+v", est)
	}
}

func TestStratifiedSample(t *testing.T) {
	_, missing := missingIntel(t, 4000, 0.3, 7)
	s := missing.Schema()
	// Strata on device ranges.
	var strata []*predicate.P
	for lo := 1.0; lo <= 54; lo += 9 {
		strata = append(strata, predicate.NewBuilder(s).Range("device", lo, lo+8).Build())
	}
	rng := rand.New(rand.NewSource(8))
	st := NewStratifiedSample("ST", missing, strata, 400, false, 0.9999, rng)
	if st.Name() != "ST" {
		t.Error("name")
	}
	truthCount := float64(missing.Len())
	if est := st.Count(nil); !est.Contains(truthCount) {
		t.Errorf("count %v outside [%v, %v]", truthCount, est.Lo, est.Hi)
	}
	truthSum := missing.Sum("light", nil)
	if est := st.Sum("light", nil); !est.Contains(truthSum) {
		t.Errorf("sum %v outside [%v, %v]", truthSum, est.Lo, est.Hi)
	}
	// Parametric variant runs too.
	rng2 := rand.New(rand.NewSource(8))
	stp := NewStratifiedSample("STp", missing, strata, 400, true, 0.99, rng2)
	estp := stp.Sum("light", nil)
	if estp.Hi <= estp.Lo {
		t.Errorf("parametric stratified interval degenerate: %+v", estp)
	}
}

func TestHistogramHardBoundsOnMarginals(t *testing.T) {
	_, missing := missingIntel(t, 4000, 0.3, 9)
	s := missing.Schema()
	h := NewHistogram("Hist", missing, []string{"device", "time", "light"}, 50)
	if h.Name() != "Hist" {
		t.Error("name")
	}
	// Single-attribute queries use one marginal: bounds are hard.
	for i := 0; i < 20; i++ {
		lo := 1 + float64(i*2)
		q := predicate.NewBuilder(s).Range("device", lo, lo+5).Build()
		truth := missing.Count(q)
		est := h.Count(q)
		if !est.Contains(truth) {
			t.Errorf("1-D histogram count failed: truth %v outside [%v, %v]", truth, est.Lo, est.Hi)
		}
		truthSum := missing.Sum("light", q)
		estSum := h.Sum("light", q)
		if !estSum.Contains(truthSum) {
			t.Errorf("1-D histogram sum failed: truth %v outside [%v, %v]", truthSum, estSum.Lo, estSum.Hi)
		}
	}
	// Unconstrained count is exact.
	if est := h.Count(nil); est.Lo != float64(missing.Len()) || est.Hi != est.Lo {
		t.Errorf("unconstrained count = %+v", est)
	}
}

func TestHistogramIndependenceCanFail(t *testing.T) {
	// Construct perfectly correlated attributes: x == y. A query x<=4 AND
	// y>=5 matches nothing, but independence predicts a positive lower
	// fraction is impossible — instead check the opposite direction: query
	// x<=4 AND y<=4 matches half the rows, but independence multiplies
	// 0.5 × 0.5 = 0.25 for the lower bound, underestimating. The failure
	// mode materializes as a lower bound above the truth for anti-correlated
	// regions; here we simply document that 2-D estimates are not exact.
	tb := table.New(schemaXY())
	for i := 0; i < 100; i++ {
		v := float64(i % 10)
		tb.MustAppend(domain.Row{v, v})
	}
	h := NewHistogram("Hist", tb, []string{"x", "y"}, 10)
	q := predicate.NewBuilder(tb.Schema()).Le("x", 4).Ge("y", 5).Build()
	truth := tb.Count(q) // 0: x == y can't be both <=4 and >=5
	est := h.Count(q)
	// Independence gives hi = 100 × 0.5 × 0.5 = 25 — wildly above the truth
	// but containing it; the point is the marginals cannot see correlation.
	if truth != 0 {
		t.Fatal("setup broken")
	}
	if est.Hi < 20 {
		t.Errorf("independence should over-estimate: hi = %v", est.Hi)
	}
}

func schemaXY() *domain.Schema {
	return domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Integral, Domain: domain.NewInterval(0, 9)},
		domain.Attr{Name: "y", Kind: domain.Integral, Domain: domain.NewInterval(0, 9)},
	)
}
