package baselines

import (
	"math"
	"math/rand"

	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/table"
)

// GMM is a diagonal-covariance Gaussian mixture model fit by
// expectation-maximization — the generative baseline of Section 6.1.2.
type GMM struct {
	dims  int
	comps []gmmComponent
}

type gmmComponent struct {
	weight float64
	mean   []float64
	vars   []float64
}

// FitGMM fits a k-component diagonal GMM to the rows with iters EM steps.
// Initialization picks k distinct rows as seeds (k-means++-style spreading).
func FitGMM(rows []domain.Row, k, iters int, rng *rand.Rand) *GMM {
	n := len(rows)
	if n == 0 || k < 1 {
		return &GMM{}
	}
	if k > n {
		k = n
	}
	d := len(rows[0])
	g := &GMM{dims: d, comps: make([]gmmComponent, k)}

	// Global variance floor keeps EM from collapsing onto single points.
	globalVar := make([]float64, d)
	mean := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for _, r := range rows {
		for j, v := range r {
			dv := v - mean[j]
			globalVar[j] += dv * dv
		}
	}
	floor := make([]float64, d)
	for j := range globalVar {
		globalVar[j] /= float64(n)
		floor[j] = math.Max(globalVar[j]*1e-4, 1e-9)
	}

	// Spread seeds: first uniform, then farthest-point refinement.
	seeds := []int{rng.Intn(n)}
	for len(seeds) < k {
		best, bestDist := 0, -1.0
		for cand := 0; cand < n; cand++ {
			dmin := math.Inf(1)
			for _, s := range seeds {
				dist := 0.0
				for j := range rows[cand] {
					dv := rows[cand][j] - rows[s][j]
					dist += dv * dv
				}
				dmin = math.Min(dmin, dist)
			}
			if dmin > bestDist {
				bestDist, best = dmin, cand
			}
		}
		seeds = append(seeds, best)
	}
	for c := range g.comps {
		g.comps[c] = gmmComponent{
			weight: 1 / float64(k),
			mean:   append([]float64(nil), rows[seeds[c]]...),
			vars:   append([]float64(nil), globalVar...),
		}
		for j := range g.comps[c].vars {
			g.comps[c].vars[j] = math.Max(g.comps[c].vars[j], floor[j])
		}
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	for iter := 0; iter < iters; iter++ {
		// E step.
		for i, r := range rows {
			total := 0.0
			for c := range g.comps {
				p := g.comps[c].weight * g.comps[c].density(r)
				resp[i][c] = p
				total += p
			}
			if total <= 0 {
				for c := range g.comps {
					resp[i][c] = 1 / float64(k)
				}
				continue
			}
			for c := range g.comps {
				resp[i][c] /= total
			}
		}
		// M step.
		for c := range g.comps {
			var wsum float64
			mu := make([]float64, d)
			for i, r := range rows {
				w := resp[i][c]
				wsum += w
				for j, v := range r {
					mu[j] += w * v
				}
			}
			if wsum <= 1e-12 {
				continue
			}
			for j := range mu {
				mu[j] /= wsum
			}
			vr := make([]float64, d)
			for i, r := range rows {
				w := resp[i][c]
				for j, v := range r {
					dv := v - mu[j]
					vr[j] += w * dv * dv
				}
			}
			for j := range vr {
				vr[j] = math.Max(vr[j]/wsum, floor[j])
			}
			g.comps[c] = gmmComponent{weight: wsum / float64(n), mean: mu, vars: vr}
		}
	}
	return g
}

func (c *gmmComponent) density(r domain.Row) float64 {
	logp := 0.0
	for j, v := range r {
		dv := v - c.mean[j]
		logp += -0.5*dv*dv/c.vars[j] - 0.5*math.Log(2*math.Pi*c.vars[j])
	}
	return math.Exp(logp)
}

// Sample draws n rows from the mixture, clipped to the schema domain and
// rounded on integral attributes.
func (g *GMM) Sample(n int, schema *domain.Schema, rng *rand.Rand) []domain.Row {
	if len(g.comps) == 0 {
		return nil
	}
	out := make([]domain.Row, n)
	for i := range out {
		u := rng.Float64()
		ci := len(g.comps) - 1
		for c := range g.comps {
			if u < g.comps[c].weight {
				ci = c
				break
			}
			u -= g.comps[c].weight
		}
		comp := g.comps[ci]
		r := make(domain.Row, g.dims)
		for j := range r {
			v := comp.mean[j] + rng.NormFloat64()*math.Sqrt(comp.vars[j])
			a := schema.Attr(j)
			v = math.Max(a.Domain.Lo, math.Min(a.Domain.Hi, v))
			if a.Kind == domain.Integral {
				v = math.Round(v)
			}
			r[j] = v
		}
		out[i] = r
	}
	return out
}

// Components returns the number of mixture components.
func (g *GMM) Components() int { return len(g.comps) }

// Generative is the "Gen" baseline: fit a GMM to the missing rows, then
// answer queries by simulating several synthetic missing datasets and
// reporting the min/max result across replicas (Section 6.1.2).
type Generative struct {
	Label    string
	schema   *domain.Schema
	model    *GMM
	total    int
	replicas []*table.T
}

// NewGenerative fits the model (k components, EM iterations) and
// pre-simulates `replicas` datasets of the true missing cardinality.
func NewGenerative(label string, missing *table.T, k, emIters, replicas int, rng *rand.Rand) *Generative {
	g := &Generative{Label: label, schema: missing.Schema(), total: missing.Len()}
	g.model = FitGMM(missing.Rows(), k, emIters, rng)
	for rep := 0; rep < replicas; rep++ {
		t := table.New(g.schema)
		for _, r := range g.model.Sample(g.total, g.schema, rng) {
			t.MustAppend(r)
		}
		g.replicas = append(g.replicas, t)
	}
	return g
}

// Name implements Estimator.
func (g *Generative) Name() string { return g.Label }

// Count implements Estimator.
func (g *Generative) Count(where *predicate.P) Estimate {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range g.replicas {
		v := t.Count(where)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return Estimate{}
	}
	return Estimate{Lo: lo, Hi: hi}
}

// Sum implements Estimator.
func (g *Generative) Sum(attr string, where *predicate.P) Estimate {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range g.replicas {
		v := t.Sum(attr, where)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return Estimate{}
	}
	return Estimate{Lo: lo, Hi: hi}
}
