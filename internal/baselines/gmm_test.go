package baselines

import (
	"math"
	"math/rand"
	"testing"

	"pcbound/internal/core"
	"pcbound/internal/data"
	"pcbound/internal/domain"
	"pcbound/internal/pcgen"
	"pcbound/internal/stats"
	"pcbound/internal/table"
)

func TestFitGMMRecoversSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var rows []domain.Row
	for i := 0; i < 300; i++ {
		rows = append(rows, domain.Row{rng.NormFloat64()*0.5 + 0})
	}
	for i := 0; i < 300; i++ {
		rows = append(rows, domain.Row{rng.NormFloat64()*0.5 + 10})
	}
	g := FitGMM(rows, 2, 30, rng)
	if g.Components() != 2 {
		t.Fatalf("components = %d", g.Components())
	}
	m0 := g.comps[0].mean[0]
	m1 := g.comps[1].mean[0]
	if m0 > m1 {
		m0, m1 = m1, m0
	}
	if math.Abs(m0-0) > 1 || math.Abs(m1-10) > 1 {
		t.Errorf("means = %v, %v, want ~0 and ~10", m0, m1)
	}
	// Weights roughly balanced.
	if g.comps[0].weight < 0.3 || g.comps[0].weight > 0.7 {
		t.Errorf("weight = %v", g.comps[0].weight)
	}
}

func TestGMMSampleRespectsSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	schema := domain.NewSchema(
		domain.Attr{Name: "k", Kind: domain.Integral, Domain: domain.NewInterval(0, 10)},
		domain.Attr{Name: "v", Kind: domain.Continuous, Domain: domain.NewInterval(0, 1)},
	)
	var rows []domain.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, domain.Row{float64(rng.Intn(11)), rng.Float64()})
	}
	g := FitGMM(rows, 3, 15, rng)
	samples := g.Sample(200, schema, rng)
	if len(samples) != 200 {
		t.Fatalf("samples = %d", len(samples))
	}
	full := schema.FullBox()
	for _, r := range samples {
		if !full.Contains(r) {
			t.Fatalf("sample %v escapes domain", r)
		}
		if r[0] != math.Round(r[0]) {
			t.Fatalf("integral attribute sampled fractional: %v", r[0])
		}
	}
}

func TestGMMDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := FitGMM(nil, 3, 5, rng); g.Components() != 0 {
		t.Error("empty fit should have no components")
	}
	// k larger than n clamps.
	rows := []domain.Row{{1}, {2}}
	if g := FitGMM(rows, 10, 5, rng); g.Components() != 2 {
		t.Errorf("k clamp: %d", FitGMM(rows, 10, 5, rng).Components())
	}
	schema := domain.NewSchema(domain.Attr{Name: "x", Kind: domain.Continuous, Domain: domain.NewInterval(0, 10)})
	empty := &GMM{}
	if s := empty.Sample(5, schema, rng); s != nil {
		t.Error("empty model should sample nothing")
	}
}

func TestGenerativeEstimator(t *testing.T) {
	tb := data.Intel(3000, 4)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	rng := rand.New(rand.NewSource(5))
	g := NewGenerative("Gen", missing, 5, 10, 8, rng)
	if g.Name() != "Gen" {
		t.Error("name")
	}
	// Full count is always the simulated cardinality: must equal truth.
	est := g.Count(nil)
	if !est.Contains(float64(missing.Len())) {
		t.Errorf("replica count %v does not contain %d", est, missing.Len())
	}
	// Sum estimate is a non-degenerate interval in the right ballpark
	// (within 3x of truth for a well-fit model).
	truth := missing.Sum("light", nil)
	es := g.Sum("light", nil)
	if es.Hi <= es.Lo {
		t.Errorf("degenerate interval %+v", es)
	}
	if es.Hi < truth/5 || es.Lo > truth*5 {
		t.Errorf("generative sum wildly off: truth %v, est %+v", truth, es)
	}
}

func TestPCEstimatorWrapsEngine(t *testing.T) {
	tb := data.Intel(3000, 6)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	set, err := pcgen.CorrPC(missing, []string{"device", "time"}, 49)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(set, nil, core.Options{})
	pc := &PCEstimator{Label: "Corr-PC", Engine: e}
	if pc.Name() != "Corr-PC" {
		t.Error("name")
	}
	truth := float64(missing.Len())
	if est := pc.Count(nil); !est.Contains(truth) {
		t.Errorf("count %v outside %+v", truth, est)
	}
	truthSum := missing.Sum("light", nil)
	if est := pc.Sum("light", nil); !est.Contains(truthSum) {
		t.Errorf("sum %v outside %+v", truthSum, est)
	}
}

func TestExtrapolateSumUnderCorrelatedMissingness(t *testing.T) {
	tb := data.Intel(4000, 7)
	truth := tb.Sum("light", nil)
	// Correlated removal: extrapolation under-estimates badly.
	presentCorr, _ := tb.RemoveTopFraction("light", 0.4)
	estCorr := ExtrapolateSum(presentCorr, "light", nil, tb.Len())
	errCorr := RelativeError(estCorr, truth)
	// Random removal: extrapolation is nearly unbiased.
	presentRand, _ := data.RemoveRandomFraction(tb, 0.4, 8)
	estRand := ExtrapolateSum(presentRand, "light", nil, tb.Len())
	errRand := RelativeError(estRand, truth)
	if errCorr < 2*errRand {
		t.Errorf("correlated missingness error %v should dwarf random %v", errCorr, errRand)
	}
	if errRand > 0.2 {
		t.Errorf("random-removal extrapolation error %v too large", errRand)
	}
	// Degenerate inputs.
	if ExtrapolateSum(table.New(tb.Schema()), "light", nil, 100) != 0 {
		t.Error("empty present table should extrapolate to 0")
	}
}

func TestMetricHelpers(t *testing.T) {
	if RelativeError(0, 0) != 0 {
		t.Error("0/0 error")
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Error("x/0 should be inf")
	}
	if RelativeError(90, 100) != 0.1 {
		t.Error("rel error")
	}
	if OverEstimationRate(200, 100) != 2 {
		t.Error("over-estimation")
	}
	if OverEstimationRate(50, 100) != 1 {
		t.Error("clamped over-estimation")
	}
	if OverEstimationRate(5, 0) != 1 {
		t.Error("zero-truth over-estimation")
	}
	if MedianOverEstimation([]float64{1, 2, 9}) != 2 {
		t.Error("median")
	}
	if stats.Median([]float64{1}) != 1 {
		t.Error("stats reachable")
	}
	e := Estimate{Lo: 1, Hi: 2}
	if !e.Contains(1.5) || e.Contains(3) {
		t.Error("Estimate.Contains")
	}
}
