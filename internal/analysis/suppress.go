package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments silence one analyzer at one site:
//
//	//pcvet:ignore <analyzer> <justification>
//
// The comment applies to its own source line when trailing a statement, or
// to the next line when it stands alone. <analyzer> may be a single name or
// "all". The justification is mandatory: a suppression without one is itself
// reported, so every deliberate exception in the tree carries its reason.

const ignorePrefix = "pcvet:ignore"

// suppression is one parsed //pcvet:ignore comment.
type suppression struct {
	analyzer string
	line     int // line the suppression applies to
}

type suppressions struct {
	byFile    map[string][]suppression
	malformed []Diagnostic
}

func scanSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byFile: make(map[string][]suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "pcvet",
						Message:  "malformed suppression: want //pcvet:ignore <analyzer> <justification>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				// A comment on its own line suppresses the next line; a
				// trailing comment suppresses its own.
				if ownLine(fset, f, c) {
					line++
				}
				s.byFile[pos.Filename] = append(s.byFile[pos.Filename], suppression{
					analyzer: fields[0],
					line:     line,
				})
			}
		}
	}
	return s
}

// ownLine reports whether the comment is the first token on its line.
func ownLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if n.End() <= c.Pos() && fset.Position(n.End()).Line == pos.Line {
			switch n.(type) {
			case *ast.File, *ast.GenDecl, *ast.FuncDecl, *ast.BlockStmt,
				*ast.StructType, *ast.FieldList, *ast.InterfaceType:
				return true // containers may span the line without occupying it
			default:
				first = false
				return false
			}
		}
		return true
	})
	return first
}

func (s *suppressions) suppressed(pos token.Position, analyzer string) bool {
	for _, sup := range s.byFile[pos.Filename] {
		if sup.line == pos.Line && (sup.analyzer == analyzer || sup.analyzer == "all") {
			return true
		}
	}
	return false
}
