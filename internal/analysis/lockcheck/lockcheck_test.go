package lockcheck_test

import (
	"testing"

	"pcbound/internal/analysis/atest"
	"pcbound/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	atest.Run(t, lockcheck.Analyzer, "testdata")
}
