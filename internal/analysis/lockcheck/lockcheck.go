// Package lockcheck enforces the repo's `// guarded by mu` field
// annotations: a field whose declaration carries the comment may only be
// accessed while the named sibling mutex is held.
//
// The analysis is lexical, not a full happens-before proof — exactly the
// level the annotations themselves live at. For every function it walks
// the statement list in source order, tracking a held-count per
// (base-expression, mutex) pair:
//
//   - x.mu.Lock() / x.mu.RLock() raise the count; Unlock/RUnlock lower it
//   - defer x.mu.Unlock() keeps the lock held to the end of the function
//   - a branch whose body terminates (the `if cond { x.mu.Unlock();
//     return }` early-exit) does not leak its lock-state changes into the
//     fall-through path; branches that merge keep the minimum held count
//     (conservative: a path that might not hold the lock flags the access)
//   - loop bodies are analyzed with a copy of the entry state and assumed
//     balanced
//   - function literals are analyzed as separate functions with no locks
//     held (a deferred or escaping closure runs who-knows-when)
//
// Three exemptions express caller-held locks and construction:
// functions whose name ends in "Locked" (the repo's convention for
// call-with-lock-held helpers), functions annotated //pcvet:locked
// <mutex> (callers hold that mutex; used where the name predates the
// convention), and values constructed in the same function by composite
// literal (not yet shared, so not yet subject to locking).
//
// Guards that name anything other than a sync.Mutex/RWMutex field of the
// same struct (e.g. "guarded by epochCache.mu" on another type's field)
// are outside the lexical model and are ignored.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"pcbound/internal/analysis"
)

// Analyzer is the lock-discipline check. Marker-driven, so it runs over
// every package.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "flags accesses to fields annotated `// guarded by <mu>` outside a region where the " +
		"named sibling mutex is held (lexical analysis; `Locked` name suffix and //pcvet:locked <mu> mark caller-held locks)",
	Run: run,
}

var (
	guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
	lockedRe  = regexp.MustCompile(`pcvet:locked\s+([A-Za-z_][A-Za-z0-9_]*)`)
)

// guardInfo maps a struct field object to the name of the sibling mutex
// field guarding it.
type guardInfo map[types.Object]string

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	c := &checker{pass: pass, guards: guards}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			c.local = locallyConstructed(pass, fd.Body)
			state := lockState{}
			for _, mu := range heldByAnnotation(fd) {
				state[wildcardBase+"."+mu] = 1
			}
			c.walkStmts(fd.Body.List, state)
		}
	}
	return nil
}

// wildcardBase marks mutexes held by annotation regardless of the base
// expression ("//pcvet:locked mu" applies to any receiver path).
const wildcardBase = "*"

// lockState maps "baseExpr.mutexField" to a held count.
type lockState map[string]int

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s { //pcvet:ignore determinism copying a counter map; order cannot affect the result
		c[k] = v
	}
	return c
}

type checker struct {
	pass   *analysis.Pass
	guards guardInfo
	local  map[types.Object]bool
}

// walkStmts processes statements in order, mutating state in place.
func (c *checker) walkStmts(stmts []ast.Stmt, state lockState) {
	for _, stmt := range stmts {
		c.walkStmt(stmt, state)
	}
}

func (c *checker) walkStmt(stmt ast.Stmt, state lockState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.checkExpr(s.X, state)
		c.applyLockCall(s.X, state)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, state)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, state)
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, state)
	case *ast.DeclStmt:
		c.checkExpr(s, state)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, state)
		}
	case *ast.SendStmt:
		c.checkExpr(s.Chan, state)
		c.checkExpr(s.Value, state)
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held to function end: no
		// state change. Any other deferred call's arguments are evaluated
		// now; its body (a FuncLit) runs later with no locks held.
		if _, _, _, ok := lockCall(c.pass, s.Call); ok {
			break
		}
		c.checkDetached(s.Call, state)
	case *ast.GoStmt:
		c.checkDetached(s.Call, state)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, state)
	case *ast.BlockStmt:
		c.walkStmts(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.checkExpr(s.Cond, state)
		bodyState := state.clone()
		c.walkStmts(s.Body.List, bodyState)
		elseState := state.clone()
		if s.Else != nil {
			c.walkStmt(s.Else, elseState)
		}
		mergeBranches(state, []branch{
			{bodyState, terminates(s.Body)},
			{elseState, s.Else != nil && stmtTerminates(s.Else)},
		})
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, state)
		}
		body := state.clone()
		c.walkStmts(s.Body.List, body)
		if s.Post != nil {
			c.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		c.checkExpr(s.X, state)
		body := state.clone()
		c.walkStmts(s.Body.List, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, state)
		}
		c.walkCases(s.Body, state)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.walkStmt(s.Assign, state)
		c.walkCases(s.Body, state)
	case *ast.SelectStmt:
		c.walkCases(s.Body, state)
	}
}

type branch struct {
	state      lockState
	terminates bool
}

// mergeBranches folds branch end-states back into state: terminating
// branches are excluded (their changes never reach the fall-through), and
// surviving branches merge with per-key minimum (held only if held on
// every path).
func mergeBranches(state lockState, branches []branch) {
	live := branches[:0]
	for _, b := range branches {
		if !b.terminates {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		return // all paths terminate; fall-through is unreachable
	}
	keys := map[string]bool{}
	for k := range state { //pcvet:ignore determinism merging count maps; order cannot affect the result
		keys[k] = true
	}
	for _, b := range live {
		for k := range b.state { //pcvet:ignore determinism merging count maps; order cannot affect the result
			keys[k] = true
		}
	}
	for k := range keys { //pcvet:ignore determinism merging count maps; order cannot affect the result
		minHeld := -1
		for _, b := range live {
			if h := b.state[k]; minHeld < 0 || h < minHeld {
				minHeld = h
			}
		}
		if minHeld <= 0 {
			delete(state, k)
		} else {
			state[k] = minHeld
		}
	}
}

func (c *checker) walkCases(body *ast.BlockStmt, state lockState) {
	var branches []branch
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.checkExpr(e, state)
			}
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm, state)
			} else {
				hasDefault = true
			}
			stmts = cl.Body
		}
		bs := state.clone()
		c.walkStmts(stmts, bs)
		branches = append(branches, branch{bs, blockTerminates(stmts)})
	}
	if !hasDefault {
		// Without a default, falling past every case is possible with the
		// entry state intact.
		branches = append(branches, branch{state.clone(), false})
	}
	if len(branches) > 0 {
		mergeBranches(state, branches)
	}
}

// terminates reports whether a block always transfers control away.
func terminates(b *ast.BlockStmt) bool { return blockTerminates(b.List) }

func blockTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return blockTerminates(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return terminates(s.Body) && stmtTerminates(s.Else)
	}
	return false
}

// applyLockCall updates state for x.mu.Lock()-shaped expression statements.
func (c *checker) applyLockCall(e ast.Expr, state lockState) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	base, mu, op, ok := lockCall(c.pass, call)
	if !ok {
		return
	}
	key := base + "." + mu
	switch op {
	case "Lock", "RLock":
		state[key]++
	case "Unlock", "RUnlock":
		if state[key] > 0 {
			state[key]--
		}
	}
}

// lockCall recognizes <base>.<mutexField>.(Lock|Unlock|RLock|RUnlock)()
// and returns the base expression string, mutex field name, and operation.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (base, mu, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	if !isSyncLocker(pass.TypesInfo.TypeOf(sel.X)) {
		return "", "", "", false
	}
	muSel, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		// A bare local mutex (var mu sync.Mutex; mu.Lock()) guards nothing
		// annotated, but track it anyway under an empty base.
		if id, isID := sel.X.(*ast.Ident); isID {
			return "", id.Name, op, true
		}
		return "", "", "", false
	}
	return types.ExprString(muSel.X), muSel.Sel.Name, op, true
}

func isSyncLocker(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// checkExpr reports guarded-field accesses in e that occur while the
// guarding mutex is not held. A function literal in ordinary expression
// position inherits the current lock state: it either runs during the
// enclosing expression (sort.Search's probe under RLock) or is stored —
// and the stored-then-detached cases (go, defer) are walked separately
// with no locks held (see checkDetached).
func (c *checker) checkExpr(n ast.Node, state lockState) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(n.Body.List, state.clone())
			return false
		case *ast.SelectorExpr:
			c.checkSelector(n, state)
		}
		return true
	})
}

// checkDetached is checkExpr for go/defer call sites: arguments are
// evaluated now (current state), but a function-literal body runs later,
// when no lexically-held lock can be assumed.
func (c *checker) checkDetached(call *ast.CallExpr, state lockState) {
	for _, arg := range call.Args {
		c.checkExpr(arg, state)
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		c.walkStmts(fl.Body.List, lockState{})
		return
	}
	c.checkExpr(call.Fun, state)
}

func (c *checker) checkSelector(sel *ast.SelectorExpr, state lockState) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	mu, guarded := c.guards[s.Obj()]
	if !guarded {
		return
	}
	base := types.ExprString(sel.X)
	if state[base+"."+mu] > 0 || state[wildcardBase+"."+mu] > 0 {
		return
	}
	if root, ok := rootIdent(sel.X); ok && c.local[c.pass.TypesInfo.ObjectOf(root)] {
		return
	}
	c.pass.Reportf(sel.Pos(), "access to %s.%s, guarded by %s, without %s.%s held (lexically); hold the lock, name the helper *Locked, or annotate the caller-held lock with //pcvet:locked %s", base, sel.Sel.Name, mu, base, mu, mu)
}

// collectGuards parses `guarded by <field>` comments on struct fields,
// keeping only guards that name a sync.Mutex/RWMutex field of the same
// struct.
func collectGuards(pass *analysis.Pass) guardInfo {
	guards := guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			mutexes := map[string]bool{}
			for _, fld := range st.Fields.List {
				if isSyncLocker(pass.TypesInfo.TypeOf(fld.Type)) {
					for _, name := range fld.Names {
						mutexes[name.Name] = true
					}
				}
			}
			for _, fld := range st.Fields.List {
				mu := guardName(fld)
				if mu == "" || !mutexes[mu] {
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardName extracts the mutex name from a field's doc or trailing comment.
func guardName(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// heldByAnnotation parses //pcvet:locked <mutex> lines in the function's
// doc comment: the named mutexes are treated as held throughout.
func heldByAnnotation(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range fd.Doc.List {
		for _, m := range lockedRe.FindAllStringSubmatch(c.Text, -1) {
			out = append(out, m[1])
		}
	}
	return out
}

// locallyConstructed collects objects assigned from composite literals or
// new(T) in this function: values still being built, not yet shared, so
// not yet subject to lock discipline.
func locallyConstructed(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isConstruction(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// rootIdent unwraps selectors/indexes/parens to the base identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func isConstruction(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok && e.Op == token.AND
	case *ast.CallExpr:
		if fn, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}
