// Package lock is the lockcheck fixture: `// guarded by mu` fields, the
// repo's lock idioms (defer unlock, early-exit unlock, *Locked helpers,
// //pcvet:locked callers, inline closures under a held lock), and the
// violations each of them prevents.
package lock

import (
	"sort"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) incDefer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) bad() int {
	return c.n // want `access to c.n, guarded by mu`
}

func (c *counter) badAfterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want `access to c.n, guarded by mu`
}

// earlyExit is the unlock-and-return idiom: the terminating branch's
// unlock does not leak into the fall-through path.
func (c *counter) earlyExit(stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// branchUnlock merges a path that released the lock: the access below is
// unprotected on that path.
func (c *counter) branchUnlock(flaky bool) {
	c.mu.Lock()
	if flaky {
		c.mu.Unlock()
	}
	c.n++ // want `access to c.n, guarded by mu`
	if !flaky {
		c.mu.Unlock()
	}
}

// incLocked: the *Locked suffix marks a caller-holds-the-lock helper.
func (c *counter) incLocked() {
	c.n++
}

// syncInner mirrors Store.syncClosure: callers hold mu, the name predates
// the *Locked convention, so the annotation carries the contract.
//
//pcvet:locked mu
func (c *counter) syncInner() {
	c.n++
}

// search: a function literal in ordinary expression position runs under
// the lock held at the call site (the sort.Search probe idiom).
func (c *counter) search(keys []string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return sort.Search(len(keys), func(i int) bool { return c.m[keys[i]] > 0 })
}

// goDetached: a goroutine body cannot assume the spawner's lock.
func (c *counter) goDetached() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `access to c.n, guarded by mu`
	}()
}

// deferredBody: a deferred closure runs after the function returns; it
// must take the lock itself (as sched's runTask panic handler does).
func (c *counter) deferredBody() {
	defer func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

// newCounter populates a value under construction: exempt.
func newCounter() *counter {
	c := &counter{m: make(map[string]int)}
	c.n = 1
	return c
}

// table exercises the read side of an RWMutex.
type table struct {
	mu   sync.RWMutex
	rows []int // guarded by mu
}

func (t *table) size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

func (t *table) sizeBad() int {
	return len(t.rows) // want `access to t.rows, guarded by mu`
}

func (t *table) rowsLocked() []int {
	return t.rows
}
