package registry_test

import (
	"testing"

	"pcbound/internal/analysis"
	"pcbound/internal/analysis/registry"
)

// TestPcvetCleanOnRepo runs the full analyzer suite over this repository:
// the tree must stay free of findings, with every deliberate exception
// carrying a justified //pcvet:ignore. A failure here reads exactly like
// the CI pcvet job's output.
func TestPcvetCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, res, err := analysis.RunPackages(root, registry.Analyzers(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages == 0 {
		t.Fatal("loaded no packages")
	}
	for _, f := range res.Findings {
		t.Errorf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
	}
	if len(diags) > 0 {
		t.Errorf("pcvet reported %d finding(s); fix them or add a justified //pcvet:ignore", len(diags))
	}
}
