// Package registry is the single list of pcvet's analyzers, shared by the
// cmd/pcvet binary and the self-check test that asserts the suite runs
// clean over this repository.
package registry

import (
	"pcbound/internal/analysis"
	"pcbound/internal/analysis/ctxflow"
	"pcbound/internal/analysis/determinism"
	"pcbound/internal/analysis/lockcheck"
	"pcbound/internal/analysis/snapmut"
)

// Analyzers returns the full pcvet suite in report order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		determinism.Analyzer,
		lockcheck.Analyzer,
		snapmut.Analyzer,
	}
}
