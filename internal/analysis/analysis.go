// Package analysis is a dependency-free re-implementation of the slice of
// golang.org/x/tools/go/analysis that pcvet needs: an Analyzer/Pass/Diagnostic
// vocabulary, a package loader built on `go list -export`, a standalone
// driver, and the `go vet -vettool` unitchecker protocol. It exists because
// this module deliberately has no third-party dependencies; the API mirrors
// the x/tools shapes closely enough that the analyzers under
// internal/analysis/... would port to the real framework mechanically.
//
// The analyzers themselves (determinism, snapmut, lockcheck, ctxflow) encode
// the repo's correctness conventions — bit-identical bounds at any
// parallelism, copy-on-write snapshot immutability, and mutex discipline —
// as machine-checked rules. See each analyzer's Doc for what it enforces,
// and the README "Correctness tooling" section for how to run and suppress.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's command-line name (also the name used in
	// //pcvet:ignore comments).
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Scope lists import-path prefixes the analyzer applies to; nil means
	// every package. The driver applies the filter (tests that call Run
	// directly bypass it).
	Scope []string
	// SkipTests excludes _test.go files from the analysis.
	SkipTests bool
	// Run executes the check over one package and reports findings via
	// pass.Report/Reportf.
	Run func(pass *Pass) error
}

// InScope reports whether the analyzer applies to a package path. Test
// variants ("pkg [pkg.test]") match their base package's scope.
func (a *Analyzer) InScope(path string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	for _, p := range a.Scope {
		if path == p || strings.HasPrefix(path, p+"/") || strings.HasPrefix(path, p+"_test") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether pos is in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunAnalyzers applies the analyzers to one type-checked package (scope
// filter and SkipTests applied, //pcvet:ignore suppressions honored) and
// returns the surviving diagnostics sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	sup := scanSuppressions(fset, files)
	for _, a := range analyzers {
		if !a.InScope(pkg.Path()) {
			continue
		}
		pfiles := files
		if a.SkipTests {
			pfiles = nil
			for _, f := range files {
				if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
					pfiles = append(pfiles, f)
				}
			}
		}
		pass := &Pass{Analyzer: a, Fset: fset, Files: pfiles, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diagnostics {
			if sup.suppressed(fset.Position(d.Pos), a.Name) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, sup.malformed...)
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// NewTypesInfo returns a types.Info with every map analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
