package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// This file implements the `go vet -vettool=` protocol (the shape
// golang.org/x/tools/go/analysis/unitchecker implements): the go command
// probes the tool with -V=full (version for the build cache) and -flags
// (supported flags), then invokes it once per package with the path to a
// JSON config file ending in .cfg describing the parsed package and the
// export data of its dependency closure. Diagnostics go to stderr and exit
// code 2 signals findings; facts (.vetx) files are written empty since none
// of pcvet's analyzers export facts.

// vetConfig mirrors the go command's vet config JSON.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetTool runs the vettool protocol when the command line matches one of
// its invocation shapes, returning (exitCode, true); otherwise it returns
// (0, false) and the caller should treat the arguments as package patterns
// for the standalone driver.
func VetTool(progname string, args []string, analyzers []*Analyzer) (int, bool) {
	jsonOut := false
	rest := args[:0:0]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			if err := printVersion(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
				return 1, true
			}
			return 0, true
		case a == "-flags" || a == "--flags":
			printFlagDefs(analyzers)
			return 0, true
		case a == "-json" || a == "--json":
			jsonOut = true
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) != 1 || !strings.HasSuffix(rest[0], ".cfg") {
		return 0, false
	}
	code, err := runVetCfg(rest[0], analyzers, jsonOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1, true
	}
	return code, true
}

// printVersion emits the exact -V=full line the go command's buildID
// parser expects from a vettool: "<progname> version devel
// comments-go-here buildID=<hash>", with the hash covering the tool binary
// so the build cache invalidates vet results when the tool changes.
func printVersion() error {
	exe := os.Args[0]
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	return nil
}

// printFlagDefs emits the JSON flag-definition list the go command uses to
// validate flags passed through `go vet -vettool`.
func printFlagDefs(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []jsonFlag{{Name: "json", Bool: true, Usage: "emit JSON output"}}
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		defs = append(defs, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	data, _ := json.MarshalIndent(defs, "", "\t")
	os.Stdout.Write(data)
	fmt.Println()
}

// runVetCfg analyzes the single package a vet config describes.
func runVetCfg(cfgFile string, analyzers []*Analyzer, jsonOut bool) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing vet config %s: %v", cfgFile, err)
	}
	// Facts output must exist even though pcvet exports none: the go
	// command records it as the action's output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil // dependency visited only to produce facts
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := checkFilesConfig(fset, cfg.ImportPath, cfg.GoFiles, types.Config{
		Importer:  imp,
		GoVersion: normalizeGoVersion(cfg.GoVersion),
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	diags, err := RunAnalyzers(fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
	if err != nil {
		return 0, err
	}
	if jsonOut {
		printVetJSON(fset, cfg.ImportPath, diags)
		return 0, nil
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// normalizeGoVersion maps the config's version string to the "go1.N" form
// go/types accepts, dropping anything unparsable.
func normalizeGoVersion(v string) string {
	if strings.HasPrefix(v, "go1") {
		return v
	}
	return ""
}

// printVetJSON emits diagnostics in the go vet -json shape.
func printVetJSON(fset *token.FileSet, importPath string, diags []Diagnostic) {
	type posDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]posDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], posDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]posDiag{importPath: byAnalyzer}
	data, _ := json.MarshalIndent(out, "", "\t")
	os.Stdout.Write(data)
	fmt.Println()
}
