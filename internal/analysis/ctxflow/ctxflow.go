// Package ctxflow keeps request cancellation wired through the serving
// layer. The server's contract is that an abandoned request stops
// consuming solver time: handlers must thread their *http.Request context
// into the engine via the Ctx entry points (BoundCtx, BoundBatchCtx), not
// call the context-free variants or mint a fresh context.Background().
//
// Within pcbound/internal/server the analyzer reports:
//
//   - calls to (*core.Engine).Bound or (*core.Engine).BoundBatch — the
//     context-free variants run the solver to completion even after the
//     client has hung up; use BoundCtx / BoundBatchCtx
//   - calls to context.Background() or context.TODO() inside a function
//     that already has a context.Context or *http.Request parameter —
//     minting a root context there severs the cancellation chain
//
// Both patterns are exact (method identity and parameter types come from
// the type checker), so the only false positives are deliberate
// detachments — background work that must outlive the request — which
// carry a //pcvet:ignore ctxflow <why> suppression.
package ctxflow

import (
	"go/ast"
	"go/types"

	"pcbound/internal/analysis"
)

// Analyzer is the context-propagation check, scoped to the serving layer
// (the only place a request context originates).
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags serving-layer code that drops the request context: calls to the context-free " +
		"Engine.Bound/BoundBatch, or context.Background()/TODO() in functions that already have a context",
	Scope:     []string{"pcbound/internal/server"},
	SkipTests: true,
	Run:       run,
}

// engineMethods maps context-free engine entry points to their
// context-threading replacements.
var engineMethods = map[string]string{
	"Bound":      "BoundCtx",
	"BoundBatch": "BoundBatchCtx",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := hasContextParam(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if repl, ok := engineCall(pass, sel); ok {
					pass.Reportf(call.Pos(), "%s runs the solver detached from the request context; use %s so client disconnects cancel the work", sel.Sel.Name, repl)
					return true
				}
				if hasCtx && isContextRoot(pass, sel) {
					pass.Reportf(call.Pos(), "context.%s() severs the cancellation chain in a function that already has a context; thread the existing one (or //pcvet:ignore ctxflow <why> for deliberately detached work)", sel.Sel.Name)
				}
				return true
			})
		}
	}
	return nil
}

// engineCall reports whether sel denotes a context-free (*core.Engine)
// entry point, returning the Ctx replacement name.
func engineCall(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	repl, ok := engineMethods[sel.Sel.Name]
	if !ok {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	recv := s.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "pcbound/internal/core" || obj.Name() != "Engine" {
		return "", false
	}
	return repl, true
}

// isContextRoot reports whether sel is context.Background or context.TODO.
func isContextRoot(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName)
	return ok && pkgName.Imported().Path() == "context"
}

// hasContextParam reports whether the function has a context.Context or
// *http.Request parameter (either carries the request's cancellation).
func hasContextParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, fld := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(fld.Type)
		if t == nil {
			continue
		}
		if isNamed(t, "context", "Context") {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok && isNamed(p.Elem(), "net/http", "Request") {
			return true
		}
	}
	return false
}

func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
