package ctxflow_test

import (
	"testing"

	"pcbound/internal/analysis/atest"
	"pcbound/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	atest.Run(t, ctxflow.Analyzer, "testdata")
}
