module pcbound

go 1.24
