// Package worker is outside the ctxflow scope (pcbound/internal/server):
// batch tooling may call the context-free entry points.
package worker

import "pcbound/internal/core"

func RunAll(e *core.Engine, qs []core.Query) ([]core.Range, error) {
	return e.BoundBatch(qs, core.BatchOptions{})
}
