// Package server is the ctxflow fixture: handler-shaped functions that
// drop, thread, or deliberately detach the request context.
package server

import (
	"context"
	"net/http"

	"pcbound/internal/core"
)

func handleBound(w http.ResponseWriter, r *http.Request, e *core.Engine) {
	_, _ = e.Bound(core.Query{}) // want `Bound runs the solver detached from the request context; use BoundCtx`
}

func handleBatch(w http.ResponseWriter, r *http.Request, e *core.Engine) {
	_, _ = e.BoundBatch(nil, core.BatchOptions{}) // want `BoundBatch runs the solver detached from the request context; use BoundBatchCtx`
}

func handleGood(w http.ResponseWriter, r *http.Request, e *core.Engine) {
	_, _ = e.BoundCtx(r.Context(), core.Query{})
}

func mintsRoot(ctx context.Context, e *core.Engine) {
	ctx2 := context.Background() // want `context.Background\(\) severs the cancellation chain`
	_, _ = e.BoundCtx(ctx2, core.Query{})
}

func mintsTODO(r *http.Request, e *core.Engine) {
	_, _ = e.BoundCtx(context.TODO(), core.Query{}) // want `context.TODO\(\) severs the cancellation chain`
}

// noCtxParam has no request context to thread, so a root context is the
// only option and is not reported.
func noCtxParam(e *core.Engine) {
	_, _ = e.BoundCtx(context.Background(), core.Query{})
}

// warmup is deliberately detached background work: suppressed with a
// justification.
func warmup(ctx context.Context, e *core.Engine) {
	//pcvet:ignore ctxflow warmup outlives the request by design
	go e.BoundCtx(context.Background(), core.Query{})
}

// fake proves method identity matters: a same-named method on another
// type is not the engine entry point.
type fake struct{}

func (fake) Bound(q core.Query) (core.Range, error) { return core.Range{}, nil }

func usesFake(r *http.Request, f fake) {
	_, _ = f.Bound(core.Query{})
}
