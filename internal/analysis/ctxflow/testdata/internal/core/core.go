// Package core is a minimal stand-in for the repo's engine: the fixture
// module is also named pcbound, so this package's import path — and the
// Engine method set — match what the ctxflow analyzer keys on.
package core

import "context"

type Range struct{ Lo, Hi float64 }

type Query struct{}

type BatchOptions struct{}

type Engine struct{}

func (e *Engine) Bound(q Query) (Range, error) { return Range{}, nil }

func (e *Engine) BoundCtx(ctx context.Context, q Query) (Range, error) {
	if err := ctx.Err(); err != nil {
		return Range{}, err
	}
	return e.Bound(q)
}

func (e *Engine) BoundBatch(qs []Query, o BatchOptions) ([]Range, error) { return nil, nil }

func (e *Engine) BoundBatchCtx(ctx context.Context, qs []Query, o BatchOptions) ([]Range, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.BoundBatch(qs, o)
}
