package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *suppressions) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, scanSuppressions(fset, []*ast.File{f})
}

func TestSuppressionTrailingAppliesToOwnLine(t *testing.T) {
	fset, sup := parseOne(t, `package p

func f(m map[string]int) {
	for range m { //pcvet:ignore determinism justified here
	}
}
`)
	pos := token.Position{Filename: "x.go", Line: 4}
	if !sup.suppressed(pos, "determinism") {
		t.Error("trailing suppression did not apply to its own line")
	}
	if sup.suppressed(pos, "snapmut") {
		t.Error("suppression leaked to a different analyzer")
	}
	if sup.suppressed(token.Position{Filename: "x.go", Line: 5}, "determinism") {
		t.Error("trailing suppression leaked to the next line")
	}
	_ = fset
}

func TestSuppressionStandaloneAppliesToNextLine(t *testing.T) {
	_, sup := parseOne(t, `package p

func f(m map[string]int) {
	//pcvet:ignore all justified here
	for range m {
	}
}
`)
	if !sup.suppressed(token.Position{Filename: "x.go", Line: 5}, "determinism") {
		t.Error("standalone suppression did not apply to the next line")
	}
	if sup.suppressed(token.Position{Filename: "x.go", Line: 4}, "determinism") {
		t.Error("standalone suppression applied to its own (comment) line")
	}
}

func TestSuppressionWithoutJustificationIsMalformed(t *testing.T) {
	_, sup := parseOne(t, `package p

func f(m map[string]int) {
	//pcvet:ignore determinism
	for range m {
	}
}
`)
	if len(sup.malformed) != 1 {
		t.Fatalf("malformed count = %d, want 1", len(sup.malformed))
	}
	if !strings.Contains(sup.malformed[0].Message, "malformed suppression") {
		t.Errorf("unexpected message %q", sup.malformed[0].Message)
	}
	// A malformed suppression must not silence anything.
	if sup.suppressed(token.Position{Filename: "x.go", Line: 5}, "determinism") {
		t.Error("malformed suppression still suppressed the next line")
	}
}
