package determinism_test

import (
	"testing"

	"pcbound/internal/analysis/atest"
	"pcbound/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	atest.Run(t, determinism.Analyzer, "testdata")
}
