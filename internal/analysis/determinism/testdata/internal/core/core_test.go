// Test files are excluded by the analyzer's SkipTests: the loop below
// would be a violation in non-test code but produces no diagnostic here.
package core

import "testing"

func TestHelperMayRangeMaps(t *testing.T) {
	m := map[string]int{"a": 1, "b": 2}
	n := 0
	for range m {
		n++
	}
	if n != 2 {
		t.Fatal(n)
	}
}
