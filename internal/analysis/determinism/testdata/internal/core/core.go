// Package core is a determinism fixture standing in for the repo's
// pcbound/internal/core: in scope for the analyzer. The cases mirror real
// patterns — a reduction over map values (the bug class), the
// collect-then-sort idiom (exempt), and a justified suppression.
package core

import "sort"

// reduceValues mirrors folding cell bounds out of a map: iteration order
// reaches the floating-point reduction, so runs disagree in the last ulp.
func reduceValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `iteration over map m has nondeterministic order`
		sum += v
	}
	return sum
}

// firstError mirrors validation loops that return the first bad entry:
// which error wins depends on map order.
func firstError(values map[string]int) string {
	for name, v := range values { // want `iteration over map values has nondeterministic order`
		if v < 0 {
			return name
		}
	}
	return ""
}

// keysSorted is the sanctioned idiom: collect, then sort before any use.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keysSortedLater is the idiom with unrelated statements between the
// collection and the sort (they do not touch the slice, so they are
// skipped when scanning for the sort call).
func keysSortedLater(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	n := len(m)
	_ = n
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// keysEscapingUnsorted collects keys but lets them escape before sorting:
// still a violation.
func keysEscapingUnsorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `iteration over map m has nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

// countAll is genuinely order-independent, so it carries a justified
// suppression instead of a sort.
func countAll(m map[string]int) int {
	n := 0
	//pcvet:ignore determinism pure count; order cannot affect the result
	for range m {
		n++
	}
	return n
}
