// Package other is outside the determinism analyzer's scope: map ranges
// here are not reported.
package other

func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
