// Package determinism flags map iteration in bit-identity-sensitive
// packages. The engine's contract — pinned by differential tests at every
// layer — is that a bound is bit-identical at any parallelism and across
// cache hits; a `range` over a map whose iteration order leaks into a
// reduction, an emitted response, or a constructed constraint breaks that
// silently and only on some runs.
//
// The analyzer reports every `for ... range m` where m is map-typed,
// except the one idiom that is deterministic by construction: a loop whose
// body only collects the keys (or values) into a slice that is sorted
// before any other use:
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// Deliberately order-independent loops (pure map→map copies, counting,
// eviction victim choice) carry a //pcvet:ignore determinism <why>
// suppression instead, so every exception is visible and justified.
package determinism

import (
	"go/ast"
	"go/types"

	"pcbound/internal/analysis"
)

// Analyzer is the determinism check. Its scope is the packages whose
// output feeds bit-identical reductions: the core engine (cell reductions,
// constraint construction), the shared scheduler (result merges), and the
// serving layer (response assembly).
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags range-over-map in bit-identity-sensitive packages unless keys are collected and sorted first; " +
		"map iteration order must never reach a reduction, response, or constraint build",
	Scope:     []string{"pcbound/internal/core", "pcbound/internal/sched", "pcbound/internal/server"},
	SkipTests: true,
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if sortedCollectIdiom(pass, rs, block.List[i+1:]) {
					continue
				}
				pass.Reportf(rs.Range, "iteration over map %s has nondeterministic order; collect and sort the keys first, or annotate a deliberately order-independent loop with //pcvet:ignore determinism <why>", types.ExprString(rs.X))
			}
			return true
		})
	}
	return nil
}

// sortedCollectIdiom reports whether the range statement is the
// collect-then-sort idiom: its body is exactly one append of the iteration
// variable into a slice, and the first later statement that uses that
// slice sorts it.
func sortedCollectIdiom(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || arg0.Name != dst.Name {
		return false
	}
	// The appended element must be the loop's key or value variable.
	elem, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	if !isIdent(rs.Key, elem.Name) && !isIdent(rs.Value, elem.Name) {
		return false
	}
	dstObj := pass.TypesInfo.ObjectOf(dst)
	if dstObj == nil {
		return false
	}
	// Scan forward: statements that do not mention the slice are skipped;
	// the first one that does must sort it.
	for _, stmt := range rest {
		if !usesObject(pass, stmt, dstObj) {
			continue
		}
		return isSortOf(pass, stmt, dstObj)
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// usesObject reports whether the statement references the object.
func usesObject(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isSortOf reports whether the statement is a sort/slices call whose first
// argument is the object (sort.Strings(keys), sort.Slice(keys, ...),
// slices.Sort(keys), sort.Sort(byX(keys)), ...).
func isSortOf(pass *analysis.Pass, stmt ast.Stmt, obj types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pkgName, ok := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName); !ok ||
		(pkgName.Imported().Path() != "sort" && pkgName.Imported().Path() != "slices") {
		return false
	}
	return usesObject(pass, call.Args[0], obj)
}
