package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file loads and type-checks packages without golang.org/x/tools:
// `go list -test -export -deps -json` enumerates the dependency closure
// (test variants included) and materializes gc export data for every
// package, the targets are parsed from source, and a gc-importer backed by
// the export-file map resolves their imports. It is the standalone-driver
// analogue of what the go command hands a vettool per package (see
// vettool.go).

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns, resolved relative to
// dir (a module root or any directory inside one). Test variants are
// loaded in place of their base package, so _test.go files (in-package and
// external) are analyzed too.
func Load(dir string, patterns ...string) ([]*Package, error) {
	fields := "ImportPath,Dir,Name,Export,DepOnly,ForTest,GoFiles,ImportMap,Error"
	args := append([]string{"list", "-e", "-test", "-export", "-deps", "-json=" + fields}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var roots []*listPackage
	exports := make(map[string]string)
	augmented := make(map[string]bool) // base packages shadowed by a test variant
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly || lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue // generated test main
		}
		if lp.ForTest != "" && !strings.HasSuffix(lp.ImportPath, "_test ["+lp.ForTest+".test]") {
			augmented[lp.ForTest] = true
		}
		p := lp
		roots = append(roots, &p)
	}

	fset := token.NewFileSet()
	baseImp := newExportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, t := range roots {
		if t.ForTest == "" && augmented[t.ImportPath] {
			continue // the test variant supersedes it (same files and more)
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		imp := baseImp
		if len(t.ImportMap) > 0 {
			imp = newExportImporter(fset, exports, t.ImportMap)
		}
		p, err := checkFiles(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		p.Dir = t.Dir
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkFiles parses and type-checks one package from source files.
func checkFiles(fset *token.FileSet, importPath string, filenames []string, imp types.Importer) (*Package, error) {
	return checkFilesConfig(fset, importPath, filenames, types.Config{Importer: imp})
}

// checkFilesConfig is checkFiles with an explicit type-checker config
// (the vettool path sets the language version from the vet config).
func checkFilesConfig(fset *token.FileSet, importPath string, filenames []string, conf types.Config) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	// The bracketed test-variant import path is not a valid package path
	// for go/types; check under the base path.
	checkPath := importPath
	if i := strings.IndexByte(checkPath, ' '); i >= 0 {
		checkPath = checkPath[:i]
	}
	tpkg, err := conf.Check(checkPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// newExportImporter returns an importer that resolves packages from gc
// export data files (as produced by `go list -export` or handed over in a
// vet config's PackageFile map). importMap, when non-nil, redirects source
// import paths first (the vet-config/ test-variant indirection).
func newExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
