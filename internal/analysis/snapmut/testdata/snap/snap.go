// Package snap is the snapmut fixture. Snapshot mirrors core.Snapshot:
// slices and maps hanging off it are frozen after construction; the cases
// cover the PR-2 append-aliasing bug class, nested reachability, and the
// construction/copy idioms that must stay legal.
package snap

// Snapshot is a frozen view.
//
// pcvet:immutable
type Snapshot struct {
	pcs   []int
	ids   []string
	meta  map[string]int
	sub   inner
	epoch uint64
}

type inner struct {
	cells []int
}

func mutateIndexed(sn *Snapshot) {
	sn.pcs[0] = 1 // want `indexed write to sn.pcs mutates immutable type Snapshot`
}

func mutateField(sn *Snapshot) {
	sn.pcs = nil // want `assignment to sn.pcs mutates immutable type Snapshot`
}

func mutateMap(sn *Snapshot) {
	sn.meta["k"] = 1 // want `indexed write to sn.meta mutates immutable type Snapshot`
}

func deleteKey(sn *Snapshot) {
	delete(sn.meta, "k") // want `delete from sn.meta mutates immutable type Snapshot`
}

// appendAliased is the append-aliasing hazard: even with the result
// assigned elsewhere, the append may write into the shared backing array.
func appendAliased(sn *Snapshot) []int {
	return append(sn.pcs, 9) // want `append to sn.pcs mutates immutable type Snapshot`
}

// appendSliced aliases the same array through a slice expression.
func appendSliced(sn *Snapshot) []int {
	return append(sn.pcs[:1], 9) // want `append to sn.pcs mutates immutable type Snapshot`
}

// mutateNested reaches mutable-looking state through an immutable value:
// frozen too.
func mutateNested(sn *Snapshot) {
	sn.sub.cells[0] = 1 // want `indexed write to sn.sub.cells mutates immutable type Snapshot`
}

// scalar fields are not covered (lazily computed once-guarded scalars are
// written under their own synchronization).
func setEpoch(sn *Snapshot) {
	sn.epoch = 7
}

// reading is always fine.
func read(sn *Snapshot) int {
	return sn.pcs[0] + sn.meta["k"]
}

// copyIDs is the sanctioned copy idiom: append into a fresh slice.
func copyIDs(sn *Snapshot) []string {
	return append([]string(nil), sn.ids...)
}

// build populates a value it constructed itself: exempt.
func build() *Snapshot {
	sn := &Snapshot{meta: make(map[string]int)}
	sn.pcs = []int{1}
	sn.pcs[0] = 2
	sn.meta["k"] = 3
	return sn
}

// refresh is a sanctioned mutation site via annotation.
//
//pcvet:mutator Snapshot
func refresh(sn *Snapshot) {
	sn.meta["hits"]++
}

// unmarked types are untouched by the analyzer.
type scratch struct {
	buf []int
}

func grow(s *scratch) {
	s.buf = append(s.buf, 1)
}
