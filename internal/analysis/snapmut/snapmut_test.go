package snapmut_test

import (
	"testing"

	"pcbound/internal/analysis/atest"
	"pcbound/internal/analysis/snapmut"
)

func TestSnapmut(t *testing.T) {
	atest.Run(t, snapmut.Analyzer, "testdata")
}
