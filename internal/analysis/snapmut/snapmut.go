// Package snapmut enforces snapshot/cache-value immutability: no write,
// append, or delete may touch a slice or map reachable from a value of a
// type marked immutable, outside that value's construction. This is the
// static generalization of the append-aliasing hazard PR 2 found in the
// cells DFS by luck — an append through a shared backing array silently
// corrupts every snapshot and cached decomposition aliasing it.
//
// A type opts in with a marker line in its doc comment:
//
//	// pcvet:immutable
//	type Snapshot struct { ... }
//
// For marked types the analyzer reports:
//
//   - assignments through a slice/map field: sn.pcs[i] = v, sn.m[k] = v
//   - whole-field assignment of a slice/map field: sn.pcs = x
//   - delete(sn.m, k)
//   - append whose first argument aliases a marked field: append(sn.pcs,
//     ...), append(sn.pcs[:i], ...) — even when the result is assigned
//     elsewhere, appending may write into the shared backing array
//
// Two exemptions express "during construction": values created in the
// same function by a composite literal (or new) may be populated freely,
// and a function annotated //pcvet:mutator <Type> is a sanctioned
// construction/mutation site (none exist today; the annotation is for
// future Store-internal machinery).
//
// Scalar fields are not covered: lazily computed once-guarded scalars
// (Snapshot.disjoint) are safe to write under their own synchronization.
package snapmut

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"pcbound/internal/analysis"
)

// Analyzer is the snapshot-immutability check. Marker-driven, so it runs
// over every package.
var Analyzer = &analysis.Analyzer{
	Name: "snapmut",
	Doc: "flags writes, appends, and deletes to slice/map state reachable from a type marked " +
		"// pcvet:immutable outside its construction (the append-aliasing bug class)",
	Run: run,
}

var mutatorRe = regexp.MustCompile(`pcvet:mutator\s+(\w+)`)

func run(pass *analysis.Pass) error {
	immutable := markedTypes(pass)
	if len(immutable) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := mutatorExemptions(fd)
			local := locallyConstructed(pass, fd)
			check := func(base ast.Expr, pos ast.Node, what, field string) {
				name, ok := immutableInChain(pass, immutable, base)
				if !ok {
					return
				}
				if exempt[name] {
					return
				}
				if root, ok := rootIdent(base); ok && local[pass.TypesInfo.ObjectOf(root)] {
					return
				}
				pass.Reportf(pos.Pos(), "%s %s.%s mutates immutable type %s outside construction; copy first or move the write into the owning constructor", what, types.ExprString(base), field, name)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkWrite(pass, check, lhs)
					}
				case *ast.IncDecStmt:
					checkWrite(pass, check, n.X)
				case *ast.CallExpr:
					checkCall(pass, check, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkWrite inspects one assignment target.
func checkWrite(pass *analysis.Pass, check func(ast.Expr, ast.Node, string, string), lhs ast.Expr) {
	switch lhs := lhs.(type) {
	case *ast.IndexExpr:
		// sn.pcs[i] = v / sn.m[k] = v — the indexed expression must reach
		// a field of a marked type.
		if sel, field, ok := fieldSelector(pass, lhs.X); ok {
			check(sel.X, lhs, "indexed write to", field)
		}
	case *ast.SelectorExpr:
		// sn.pcs = v — only slice/map fields are frozen.
		if sel, field, ok := fieldSelector(pass, lhs); ok && sliceOrMap(pass.TypesInfo.TypeOf(lhs)) {
			check(sel.X, lhs, "assignment to", field)
		}
	case *ast.StarExpr:
		checkWrite(pass, check, lhs.X)
	}
}

// checkCall flags delete(sn.m, k) and append(sn.pcs..., ...).
func checkCall(pass *analysis.Pass, check func(ast.Expr, ast.Node, string, string), call *ast.CallExpr) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); !ok || (b.Name() != "delete" && b.Name() != "append") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	// Unwrap slicing: append(sn.pcs[:i], ...) aliases the same array.
	for {
		if sl, ok := arg.(*ast.SliceExpr); ok {
			arg = sl.X
			continue
		}
		break
	}
	if sel, field, ok := fieldSelector(pass, arg); ok {
		verb := "delete from"
		if fn.Name == "append" {
			verb = "append to"
		}
		check(sel.X, call, verb, field)
	}
}

// fieldSelector reports whether e is a selector denoting a struct field,
// returning the selector and field name.
func fieldSelector(pass *analysis.Pass, e ast.Expr) (*ast.SelectorExpr, string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, "", false
	}
	return sel, sel.Sel.Name, true
}

// immutableInChain walks the selector/index chain (sn.sub.m → sn.sub →
// sn) and reports whether any step's type is a marked type: state reached
// THROUGH an immutable value is frozen too.
func immutableInChain(pass *analysis.Pass, immutable map[*types.TypeName]bool, e ast.Expr) (string, bool) {
	for {
		if name, ok := immutableBase(pass, immutable, e); ok {
			return name, true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// immutableBase reports whether the expression's type (pointers stripped)
// is one of the marked named types, returning its name.
func immutableBase(pass *analysis.Pass, immutable map[*types.TypeName]bool, e ast.Expr) (string, bool) {
	t := pass.TypesInfo.TypeOf(e)
	for t != nil {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	if immutable[named.Obj()] {
		return named.Obj().Name(), true
	}
	return "", false
}

// rootIdent unwraps selectors/indexes/parens to the base identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func sliceOrMap(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// markedTypes collects the package's types whose doc comment carries the
// pcvet:immutable marker.
func markedTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasMarker(gd.Doc, "pcvet:immutable") && !hasMarker(ts.Doc, "pcvet:immutable") && !hasMarker(ts.Comment, "pcvet:immutable") {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// mutatorExemptions parses //pcvet:mutator <Type> annotations on the
// function's doc comment.
func mutatorExemptions(fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	if fd.Doc == nil {
		return out
	}
	for _, c := range fd.Doc.List {
		for _, m := range mutatorRe.FindAllStringSubmatch(c.Text, -1) {
			out[m[1]] = true
		}
	}
	return out
}

// locallyConstructed collects objects assigned from a composite literal,
// &composite, or new(T) anywhere in the function: values this function is
// still building, which it may populate freely.
func locallyConstructed(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isConstruction(pass, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func isConstruction(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok && e.Op.String() == "&"
	case *ast.CallExpr:
		if fn, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}
