// Package atest is the fixture harness for pcvet analyzers, the
// offline analogue of golang.org/x/tools/go/analysis/analysistest: a
// testdata directory holds a self-contained Go module of fixture
// packages, expected diagnostics are written as `// want "regexp"`
// comments on the offending line, and Run asserts an exact match — every
// want satisfied, no diagnostic unexpected.
//
// Fixtures run through the same Load → RunAnalyzers stack as the real
// drivers, so scope filters, test-file skipping, and //pcvet:ignore
// suppressions are exercised too: a fixture module named `pcbound` can
// stand in for the repo when an analyzer's scope names repo packages.
package atest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pcbound/internal/analysis"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads every package in the fixture module rooted at dir and checks
// the analyzer's diagnostics against the module's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixtures in %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages in %s", dir)
	}
	for _, p := range pkgs {
		wants := collectWants(t, p.Fset, p.Files)
		diags, err := analysis.RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: %v", p.ImportPath, err)
		}
		for _, d := range diags {
			pos := p.Fset.Position(d.Pos)
			if !claim(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			}
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// regexp matches the message.
func claim(wants []*want, file string, line int, message string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses `// want "regexp" ...` comments. The expectation
// applies to the line the comment starts on; multiple quoted regexps on
// one comment expect multiple diagnostics.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWantPatterns(text)
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, re := range res {
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// parseWantPatterns reads the sequence of Go-quoted regexps after "want".
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		lit, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
		s = s[len(q):]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}
