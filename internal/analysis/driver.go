package analysis

import (
	"fmt"
	"io"
)

// RunPackages loads the packages matching patterns under dir and applies
// the analyzers (scope-filtered, suppressions honored). It returns every
// surviving diagnostic, position-sorted within each package.
func RunPackages(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, *Result, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{}
	var out []Diagnostic
	for _, p := range pkgs {
		res.Packages++
		ds, err := RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, analyzers)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		for _, d := range ds {
			out = append(out, d)
			res.Findings = append(res.Findings, Finding{
				Position: p.Fset.Position(d.Pos).String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	return out, res, nil
}

// Finding is a rendered diagnostic (position as file:line:col).
type Finding struct {
	Position string
	Analyzer string
	Message  string
}

// Result summarizes a standalone run.
type Result struct {
	Packages int
	Findings []Finding
}

// Print writes findings in the conventional file:line:col: message form.
func (r *Result) Print(w io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%s: %s: %s\n", f.Position, f.Analyzer, f.Message)
	}
}
