// Command pcbench reproduces the paper's evaluation. Each experiment id maps
// to one figure or table of "Fast and Reliable Missing Data Contingency
// Analysis with Predicate-Constraints" (SIGMOD 2020); see README.md for the
// full index.
//
// Usage:
//
//	pcbench -exp fig3                 # one experiment at default scale
//	pcbench -exp all -queries 1000 \
//	        -pcs 2000 -rows 200000    # full paper-scale run
//	pcbench -exp fig8 -parallel -1    # fan query bounding over all cores
//	pcbench -exp fig8 -cpuprofile cpu.out -memprofile mem.out
//	pcbench -bench intraquery -json BENCH_PR5.json
//	                                  # micro-benchmark suite + JSON report
//	pcbench -bench all -sweep -json BENCH_PR8.json
//	                                  # every suite at GOMAXPROCS 1/2/4/N
//	pcbench -list                     # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pcbound/internal/experiments"
)

func main() {
	// All work happens in run so its defers — the profile flushes in
	// particular — execute on every exit path; os.Exit here would skip them.
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment id (fig1, fig3, …, table2) or 'all'")
		rows       = flag.Int("rows", 0, "dataset rows (0 = default)")
		queries    = flag.Int("queries", 0, "queries per measurement point (0 = default)")
		pcs        = flag.Int("pcs", 0, "predicate-constraints per set (0 = default)")
		seed       = flag.Int64("seed", 0, "random seed (0 = default)")
		list       = flag.Bool("list", false, "list experiments and exit")
		quick      = flag.Bool("quick", false, "use the reduced quick configuration")
		parallel   = flag.Int("parallel", 0, "worker goroutines for query bounding (0 or 1 = sequential, -1 = GOMAXPROCS)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
		bench      = flag.String("bench", "", "run a micro-benchmark suite instead of an experiment (available: intraquery, tiered, all)")
		sweep      = flag.Bool("sweep", false, "rerun the -bench suite at GOMAXPROCS 1, 2, 4 and NumCPU, suffixing result names with @pN")
		jsonOut    = flag.String("json", "", "write machine-readable benchmark results (name, iters, ns/op, allocs/op, speedup vs reference) to this file; implies -bench all")
	)
	flag.Parse()

	if (*jsonOut != "" || *sweep) && *bench == "" {
		*bench = "all"
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Printf("%-8s %s\n", name, experiments.Title(name))
		}
		return 0
	}

	// Both profile files are created before any experiment work, so a bad
	// path fails in milliseconds instead of after a paper-scale run; and
	// both are flushed/closed on every exit path, so even a failing run
	// leaves a usable profile of the work done so far.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "pcbench: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "pcbench: cpuprofile: %v\n", err)
			}
		}()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: memprofile: %v\n", err)
			return 1
		}
		defer func() {
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pcbench: memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "pcbench: memprofile: %v\n", err)
			}
		}()
	}

	// The bench suite dispatches after the profile flags are armed (above),
	// so -bench runs are profilable like any experiment; the deferred
	// flushes fire on this return.
	if *bench != "" {
		return runBenchSuite(*bench, *jsonOut, *sweep)
	}

	par := *parallel
	if par < 0 {
		par = runtime.GOMAXPROCS(0)
	}
	cfg := experiments.Config{Rows: *rows, Queries: *queries, PCs: *pcs, Seed: *seed, Parallelism: par}
	if *quick {
		q := experiments.Quick()
		if cfg.Rows == 0 {
			cfg.Rows = q.Rows
		}
		if cfg.Queries == 0 {
			cfg.Queries = q.Queries
		}
		if cfg.PCs == 0 {
			cfg.PCs = q.PCs
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		res, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			return 1
		}
		fmt.Printf("== %s: %s (%s)\n\n%s\n", res.Name, res.Title,
			time.Since(start).Round(time.Millisecond), res.Table)
	}
	return 0
}
