package main

// The -bench mode: an in-binary micro-benchmark suite with machine-readable
// output, so the perf trajectory across PRs lives in committed JSON
// (BENCH_PR5.json) and CI artifacts instead of scrollback. testing.Benchmark
// gives the same adaptive iteration logic as `go test -bench`.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pcbound/internal/core"
	"pcbound/internal/experiments"
	"pcbound/internal/sched"
)

// BenchResult is one benchmark's machine-readable outcome.
type BenchResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SpeedupVsReference is reference ns/op divided by this row's ns/op,
	// where the reference is the suite's sequential configuration (1.0 for
	// the reference row itself).
	SpeedupVsReference float64 `json:"speedup_vs_reference"`
}

// BenchReport is the top-level JSON document -json writes.
type BenchReport struct {
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
}

// suiteOrder fixes the order suites run in under "all"; suiteRunners maps
// each name to its implementation. A runner benches under whatever
// GOMAXPROCS is current, so -sweep can rerun it per parallelism level.
var suiteOrder = []string{"intraquery", "tiered"}

var suiteRunners = map[string]func() (*BenchReport, error){
	"intraquery": runIntraQuerySuite,
	"tiered":     runTieredSuite,
}

// sweepLevels returns the GOMAXPROCS ladder {1, 2, 4, NumCPU} (deduplicated,
// ascending). On a small host the ladder still exercises >NumCPU levels:
// GOMAXPROCS above the core count is legal and shows the scheduler's
// oversubscription behavior rather than being skipped.
func sweepLevels() []int {
	levels := []int{1, 2, 4}
	n := runtime.NumCPU()
	switch {
	case n > 4:
		levels = append(levels, n)
	case n == 3:
		levels = []int{1, 2, 3, 4}
	}
	return levels
}

// runBenchSuite runs the named suite (or all of them), optionally swept
// across GOMAXPROCS levels, and returns an exit code. When jsonPath is
// non-empty the merged report is also written there.
func runBenchSuite(suite, jsonPath string, sweep bool) int {
	var names []string
	if suite == "all" {
		names = suiteOrder
	} else if _, ok := suiteRunners[suite]; ok {
		names = []string{suite}
	} else {
		fmt.Fprintf(os.Stderr, "pcbench: unknown bench suite %q (available: intraquery, tiered, all)\n", suite)
		return 1
	}
	levels := []int{runtime.GOMAXPROCS(0)}
	if sweep {
		levels = sweepLevels()
	}

	// The report's GOMAXPROCS is the widest level benched; per-level rows
	// are distinguished by the @pN suffix a sweep appends.
	report := &BenchReport{Suite: suite, GoVersion: runtime.Version(), GOMAXPROCS: levels[len(levels)-1]}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range levels {
		runtime.GOMAXPROCS(p)
		for _, name := range names {
			sub, err := suiteRunners[name]()
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", name, err)
				return 1
			}
			for _, r := range sub.Results {
				if sweep {
					r.Name = fmt.Sprintf("%s@p%d", r.Name, p)
				}
				report.Results = append(report.Results, r)
			}
		}
	}
	runtime.GOMAXPROCS(prev)

	fmt.Printf("== bench %s (GOMAXPROCS=%d, %s)\n\n", report.Suite, report.GOMAXPROCS, report.GoVersion)
	for _, r := range report.Results {
		fmt.Printf("%-32s %10d iters  %14.0f ns/op  %8d allocs/op  %8.2fx vs reference\n",
			r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp, r.SpeedupVsReference)
	}
	if jsonPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: encoding report: %v\n", err)
			return 1
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: writing %s: %v\n", jsonPath, err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return 0
}

// runIntraQuerySuite benchmarks one MILP-heavy query on the sequential
// reference path, on the shared scheduler, and on a warm cell-bound cache,
// verifying along the way that all three produce bit-identical Ranges.
func runIntraQuerySuite() (*BenchReport, error) {
	store, q := experiments.IntraQueryScenario()
	par := runtime.GOMAXPROCS(0)
	seqOpts := core.Options{SequentialCells: true, DisableCellCache: true, DisableFastPath: true}
	sch := sched.New(par)
	defer sch.Close()
	schedOpts := core.Options{Scheduler: sch, DisableCellCache: true, DisableFastPath: true}
	cacheOpts := core.Options{Scheduler: sch, DisableFastPath: true}

	// Bit-identity first: the benchmark numbers are only comparable if the
	// three paths agree bit-for-bit on the answer.
	want, err := core.NewEngine(store, nil, seqOpts).Bound(q)
	if err != nil {
		return nil, err
	}
	for name, opts := range map[string]core.Options{"scheduler": schedOpts, "cell-cache": cacheOpts} {
		got, err := core.NewEngine(store, nil, opts).Bound(q)
		if err != nil {
			return nil, err
		}
		if got != want {
			return nil, fmt.Errorf("%s path range %+v != sequential %+v", name, got, want)
		}
	}

	bench := func(name string, engine *core.Engine, warm bool) (BenchResult, error) {
		if warm {
			if _, err := engine.Bound(q); err != nil {
				return BenchResult{}, err
			}
		}
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Bound(q); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return BenchResult{}, benchErr
		}
		return BenchResult{
			Name:        name,
			Iters:       res.N,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}, nil
	}

	report := &BenchReport{Suite: "intraquery", GoVersion: runtime.Version(), GOMAXPROCS: par}
	rows := []struct {
		name string
		opts core.Options
		warm bool
	}{
		{"intraquery/seq", seqOpts, false},
		{fmt.Sprintf("intraquery/sched-par%d", par), schedOpts, false},
		{"intraquery/cellcache-warm", cacheOpts, true},
	}
	for _, row := range rows {
		r, err := bench(row.name, core.NewEngine(store, nil, row.opts), row.warm)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, r)
	}
	ref := report.Results[0].NsPerOp
	for i := range report.Results {
		if ns := report.Results[i].NsPerOp; ns > 0 {
			report.Results[i].SpeedupVsReference = ref / ns
		}
	}
	return report, nil
}

// runTieredSuite benchmarks the tiered-precision split on one MILP-heavy
// query: a cold exact solve (every cache disabled, so each iteration pays
// the full decomposition + solver cost — the reference row), a warm exact
// solve, and the summary tier (sound outer interval, no solver work). The
// summary row's speedup_vs_reference is the headline tiering win; before
// benching, the suite verifies the summary interval contains the exact
// range and that the exact path is bit-identical with and without the
// overlay attached.
func runTieredSuite() (*BenchReport, error) {
	store, q := experiments.IntraQueryScenario()
	ov := core.AttachSummary(store)
	defer ov.Detach()

	coldOpts := core.Options{
		SequentialCells: true, DisableCellCache: true,
		DisableDecompCache: true, DisableFastPath: true,
	}
	exact, err := core.NewEngine(store, nil, coldOpts).Bound(q)
	if err != nil {
		return nil, err
	}
	tiered := core.NewEngine(store, nil, core.Options{Summary: ov})
	plain, err := core.NewEngine(store, nil, core.Options{}).Bound(q)
	if err != nil {
		return nil, err
	}
	viaTier, prec, err := tiered.BoundTiered(q, core.TierSpec{Mode: core.TierExact})
	if err != nil {
		return nil, err
	}
	if prec != core.PrecisionExact || viaTier != plain {
		return nil, fmt.Errorf("exact path changed under the overlay: %+v (%v) != %+v", viaTier, prec, plain)
	}
	sum, prec, err := tiered.BoundTiered(q, core.TierSpec{Mode: core.TierForceSummary})
	if err != nil {
		return nil, err
	}
	if prec != core.PrecisionSummary {
		return nil, fmt.Errorf("summary tier refused the scenario query")
	}
	if sum.Lo > exact.Lo || sum.Hi < exact.Hi {
		return nil, fmt.Errorf("summary [%v,%v] does not contain exact [%v,%v]", sum.Lo, sum.Hi, exact.Lo, exact.Hi)
	}

	report := &BenchReport{Suite: "tiered", GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	coldEngine := core.NewEngine(store, nil, coldOpts)
	warmEngine := core.NewEngine(store, nil, core.Options{DisableFastPath: true})
	if _, err := warmEngine.Bound(q); err != nil { // prime the caches
		return nil, err
	}
	rows := []struct {
		name string
		run  func() error
	}{
		{"tiered/exact-cold", func() error { _, err := coldEngine.Bound(q); return err }},
		{"tiered/exact-warm", func() error { _, err := warmEngine.Bound(q); return err }},
		{"tiered/summary", func() error {
			r, p, err := tiered.BoundTiered(q, core.TierSpec{Mode: core.TierForceSummary})
			if err == nil && (p != core.PrecisionSummary || r.Lo > exact.Lo || r.Hi < exact.Hi) {
				return fmt.Errorf("summary answer regressed mid-benchmark: %+v (%v)", r, p)
			}
			return err
		}},
	}
	for _, row := range rows {
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := row.run(); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return nil, benchErr
		}
		report.Results = append(report.Results, BenchResult{
			Name:        row.name,
			Iters:       res.N,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	ref := report.Results[0].NsPerOp
	for i := range report.Results {
		if ns := report.Results[i].NsPerOp; ns > 0 {
			report.Results[i].SpeedupVsReference = ref / ns
		}
	}
	return report, nil
}
