package main

// The -bench mode: an in-binary micro-benchmark suite with machine-readable
// output, so the perf trajectory across PRs lives in committed JSON
// (BENCH_PR5.json) and CI artifacts instead of scrollback. testing.Benchmark
// gives the same adaptive iteration logic as `go test -bench`.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pcbound/internal/core"
	"pcbound/internal/experiments"
	"pcbound/internal/sched"
)

// BenchResult is one benchmark's machine-readable outcome.
type BenchResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SpeedupVsReference is reference ns/op divided by this row's ns/op,
	// where the reference is the suite's sequential configuration (1.0 for
	// the reference row itself).
	SpeedupVsReference float64 `json:"speedup_vs_reference"`
}

// BenchReport is the top-level JSON document -json writes.
type BenchReport struct {
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
}

// runBenchSuite runs the named suite and returns an exit code. When
// jsonPath is non-empty the report is also written there.
func runBenchSuite(suite, jsonPath string) int {
	if suite != "intraquery" {
		fmt.Fprintf(os.Stderr, "pcbench: unknown bench suite %q (available: intraquery)\n", suite)
		return 1
	}
	report, err := runIntraQuerySuite()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
		return 1
	}
	fmt.Printf("== bench %s (GOMAXPROCS=%d, %s)\n\n", report.Suite, report.GOMAXPROCS, report.GoVersion)
	for _, r := range report.Results {
		fmt.Printf("%-28s %10d iters  %14.0f ns/op  %8d allocs/op  %6.2fx vs reference\n",
			r.Name, r.Iters, r.NsPerOp, r.AllocsPerOp, r.SpeedupVsReference)
	}
	if jsonPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: encoding report: %v\n", err)
			return 1
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: writing %s: %v\n", jsonPath, err)
			return 1
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return 0
}

// runIntraQuerySuite benchmarks one MILP-heavy query on the sequential
// reference path, on the shared scheduler, and on a warm cell-bound cache,
// verifying along the way that all three produce bit-identical Ranges.
func runIntraQuerySuite() (*BenchReport, error) {
	store, q := experiments.IntraQueryScenario()
	par := runtime.GOMAXPROCS(0)
	seqOpts := core.Options{SequentialCells: true, DisableCellCache: true, DisableFastPath: true}
	sch := sched.New(par)
	defer sch.Close()
	schedOpts := core.Options{Scheduler: sch, DisableCellCache: true, DisableFastPath: true}
	cacheOpts := core.Options{Scheduler: sch, DisableFastPath: true}

	// Bit-identity first: the benchmark numbers are only comparable if the
	// three paths agree bit-for-bit on the answer.
	want, err := core.NewEngine(store, nil, seqOpts).Bound(q)
	if err != nil {
		return nil, err
	}
	for name, opts := range map[string]core.Options{"scheduler": schedOpts, "cell-cache": cacheOpts} {
		got, err := core.NewEngine(store, nil, opts).Bound(q)
		if err != nil {
			return nil, err
		}
		if got != want {
			return nil, fmt.Errorf("%s path range %+v != sequential %+v", name, got, want)
		}
	}

	bench := func(name string, engine *core.Engine, warm bool) (BenchResult, error) {
		if warm {
			if _, err := engine.Bound(q); err != nil {
				return BenchResult{}, err
			}
		}
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Bound(q); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return BenchResult{}, benchErr
		}
		return BenchResult{
			Name:        name,
			Iters:       res.N,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}, nil
	}

	report := &BenchReport{Suite: "intraquery", GoVersion: runtime.Version(), GOMAXPROCS: par}
	rows := []struct {
		name string
		opts core.Options
		warm bool
	}{
		{"intraquery/seq", seqOpts, false},
		{fmt.Sprintf("intraquery/sched-par%d", par), schedOpts, false},
		{"intraquery/cellcache-warm", cacheOpts, true},
	}
	for _, row := range rows {
		r, err := bench(row.name, core.NewEngine(store, nil, row.opts), row.warm)
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, r)
	}
	ref := report.Results[0].NsPerOp
	for i := range report.Results {
		if ns := report.Results[i].NsPerOp; ns > 0 {
			report.Results[i].SpeedupVsReference = ref / ns
		}
	}
	return report, nil
}
