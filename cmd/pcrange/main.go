// Command pcrange computes a hard result range for one aggregate query from
// a predicate-constraint specification, and optionally validates the
// constraints against historical data.
//
// Usage:
//
//	pcrange -spec constraints.json -agg SUM -attr price
//	pcrange -spec constraints.json -agg COUNT -where "utc:11:12,branch:0:0"
//	pcrange -spec constraints.json -agg COUNT,SUM,AVG,MIN,MAX -attr price
//	pcrange -spec constraints.json -validate history.csv
//
// -agg accepts a comma-separated list; the queries are bounded as one batch
// (-parallel controls the worker count).
//
// The spec file format:
//
//	{
//	  "schema": [
//	    {"name": "utc",    "kind": "integral",   "min": 0, "max": 30},
//	    {"name": "price",  "kind": "continuous", "min": 0, "max": 1000}
//	  ],
//	  "constraints": [
//	    {"predicate": {"utc": [11, 11]},
//	     "values":    {"price": [0.99, 129.99]},
//	     "klo": 50, "khi": 100}
//	  ]
//	}
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"pcbound/internal/core"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
	"pcbound/internal/table"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to the constraint spec JSON (required)")
		agg      = flag.String("agg", "COUNT", "comma-separated aggregates: COUNT, SUM, AVG, MIN, MAX")
		attr     = flag.String("attr", "", "aggregated attribute (for SUM/AVG/MIN/MAX)")
		where    = flag.String("where", "", "predicate, e.g. \"utc:11:12,branch:0:0\"")
		validate = flag.String("validate", "", "CSV of historical rows to test the constraints against")
		parallel = flag.Int("parallel", 0, "worker goroutines for the query batch (0 or 1 = sequential, -1 = GOMAXPROCS)")
	)
	flag.Parse()
	if *specPath == "" {
		fail("missing -spec")
	}

	raw, err := os.ReadFile(*specPath)
	if err != nil {
		fail("%v", err)
	}
	set, schema, err := core.DecodeSet(raw)
	if err != nil {
		fail("%v", err)
	}

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		tb, err := table.ReadCSV(schema, f)
		if err != nil {
			fail("reading history: %v", err)
		}
		errs := set.Validate(tb.Rows())
		if len(errs) == 0 {
			fmt.Printf("all %d constraints hold on %d historical rows\n", set.Len(), tb.Len())
			return
		}
		for _, e := range errs {
			fmt.Printf("VIOLATED: %v\n", e)
		}
		os.Exit(2)
	}

	var wherePred *predicate.P
	if *where != "" {
		b := predicate.NewBuilder(schema)
		for _, clause := range strings.Split(*where, ",") {
			parts := strings.Split(clause, ":")
			if len(parts) != 3 {
				fail("bad where clause %q (want attr:lo:hi)", clause)
			}
			lo, err1 := strconv.ParseFloat(parts[1], 64)
			hi, err2 := strconv.ParseFloat(parts[2], 64)
			if err1 != nil || err2 != nil {
				fail("bad bounds in %q", clause)
			}
			b.Range(parts[0], lo, hi)
		}
		wherePred = b.Build()
	}

	var queries []core.Query
	var labels []string
	for _, name := range strings.Split(*agg, ",") {
		name = strings.ToUpper(strings.TrimSpace(name))
		var aggKind core.Agg
		switch name {
		case "COUNT":
			aggKind = core.Count
		case "SUM":
			aggKind = core.Sum
		case "AVG":
			aggKind = core.Avg
		case "MIN":
			aggKind = core.Min
		case "MAX":
			aggKind = core.Max
		default:
			fail("unknown aggregate %q", name)
		}
		if aggKind != core.Count && *attr == "" {
			fail("-attr is required for %s", name)
		}
		queries = append(queries, core.Query{Agg: aggKind, Attr: *attr, Where: wherePred})
		labels = append(labels, name)
	}

	solver := sat.New(schema)
	engine := core.NewEngine(set, solver, core.Options{})
	if !set.Closed(solver) {
		if w, ok := set.Uncovered(solver); ok {
			fmt.Fprintf(os.Stderr, "warning: constraint set is not closed (e.g. %v is uncovered); bounds hold only if no missing row falls outside all predicates\n", w)
		}
	}
	par := *parallel
	if par < 0 {
		par = runtime.GOMAXPROCS(0)
	}
	ranges, err := engine.BoundBatch(queries, core.BatchOptions{Parallelism: max(par, 1)})
	if err != nil {
		fail("%v", err)
	}
	for i, r := range ranges {
		if r.Lo > r.Hi {
			fmt.Printf("%s: no missing rows can match this query: aggregate undefined\n", labels[i])
			continue
		}
		fmt.Printf("%s range: [%g, %g]\n", labels[i], r.Lo, r.Hi)
		if r.MaybeEmpty {
			fmt.Println("note: zero matching rows is also consistent with the constraints")
		}
		if r.Reconciled {
			fmt.Println("note: conflicting frequency lower bounds were relaxed (constraints reconciled)")
		}
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pcrange: "+format+"\n", args...)
	os.Exit(1)
}
