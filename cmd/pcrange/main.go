// Command pcrange computes hard result ranges for aggregate queries from a
// predicate-constraint specification, validates the constraints against
// historical data, and — in script mode — drives an evolving constraint
// store interactively: add, tighten, and retract constraints and re-bound
// queries without rebuilding the engine from scratch.
//
// Usage:
//
//	pcrange -spec constraints.json -agg SUM -attr price
//	pcrange -spec constraints.json -agg COUNT -where "utc:11:12,branch:0:0"
//	pcrange -spec constraints.json -agg COUNT,SUM,AVG,MIN,MAX -attr price
//	pcrange -spec constraints.json -validate history.csv
//	pcrange -spec constraints.json -script session.txt
//	pcrange -spec constraints.json -script -          # read commands from stdin
//
// -agg accepts a comma-separated list; the queries are bounded as one batch
// (-parallel controls the worker count).
//
// Script mode reads one command per line ('#' starts a comment):
//
//	bound AGGS [ATTR] [WHERE]   bound aggregates, e.g. "bound SUM,AVG price utc:11:12"
//	                            (use "-" for ATTR with COUNT-only lists)
//	add JSON                    add a constraint, e.g. add {"name":"late","predicate":{"utc":[21,30]},"klo":3,"khi":5}
//	remove NAME|#N              retract a constraint by name or 1-based index
//	replace NAME|#N JSON        swap a constraint in place (tighten/loosen)
//	show                        list current constraints
//	stats                       store epoch, decomposition-cache and SAT-solver counters
//	closed                      incremental closure check (with witness if open)
//	quit                        stop reading
//
// Mutations bump the store epoch and rebind the engine to the new snapshot;
// cached decompositions for regions untouched by a mutation stay live, so a
// mutate-and-rebound cycle is much cheaper than a cold start (see
// internal/core's scoped invalidation).
//
// The spec file format:
//
//	{
//	  "schema": [
//	    {"name": "utc",    "kind": "integral",   "min": 0, "max": 30},
//	    {"name": "price",  "kind": "continuous", "min": 0, "max": 1000}
//	  ],
//	  "constraints": [
//	    {"predicate": {"utc": [11, 11]},
//	     "values":    {"price": [0.99, 129.99]},
//	     "klo": 50, "khi": 100}
//	  ]
//	}
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
	"pcbound/internal/table"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "path to the constraint spec JSON (required)")
		agg        = flag.String("agg", "COUNT", "comma-separated aggregates: COUNT, SUM, AVG, MIN, MAX")
		attr       = flag.String("attr", "", "aggregated attribute (for SUM/AVG/MIN/MAX)")
		where      = flag.String("where", "", "predicate, e.g. \"utc:11:12,branch:0:0\"")
		validate   = flag.String("validate", "", "CSV of historical rows to test the constraints against")
		scriptPath = flag.String("script", "", "mutate-and-rebound command script (\"-\" for stdin)")
		parallel   = flag.Int("parallel", 0, "worker goroutines for the query batch (0 or 1 = sequential, -1 = GOMAXPROCS)")
	)
	flag.Parse()
	if *specPath == "" {
		fail("missing -spec")
	}
	if *parallel < -1 {
		fail("-parallel must be >= -1, got %d", *parallel)
	}
	if *scriptPath != "" {
		// Script mode takes its queries from the script; silently ignoring
		// explicitly passed query flags would let users mistake the script
		// output for covering their flag-specified query.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "agg", "attr", "where", "validate":
				fail("-%s cannot be combined with -script (put the query in the script's bound commands)", f.Name)
			}
		})
	}

	raw, err := os.ReadFile(*specPath)
	if err != nil {
		fail("%v", err)
	}
	store, schema, err := core.DecodeSet(raw)
	if err != nil {
		fail("%v", err)
	}

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		tb, err := table.ReadCSV(schema, f)
		if err != nil {
			fail("reading history: %v", err)
		}
		errs := store.Validate(tb.Rows())
		if len(errs) == 0 {
			fmt.Printf("all %d constraints hold on %d historical rows\n", store.Len(), tb.Len())
			return
		}
		for _, e := range errs {
			fmt.Printf("VIOLATED: %v\n", e)
		}
		os.Exit(2)
	}

	par := *parallel
	if par < 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par < 1 {
		par = 1
	}

	if *scriptPath != "" {
		runScript(store, schema, *scriptPath, par)
		return
	}

	// Single-shot mode: validate everything up front so bad flags produce a
	// clear error instead of a late panic or a silent zero range.
	queries, labels, err := parseQueries(schema, *agg, *attr, *where)
	if err != nil {
		fail("%v", err)
	}

	solver := sat.New(schema)
	engine := core.NewEngine(store, solver, core.Options{})
	warnIfOpen(store, solver)
	ranges, err := engine.BoundBatch(queries, core.BatchOptions{Parallelism: par})
	if err != nil {
		fail("%v", err)
	}
	for i, r := range ranges {
		printRange(os.Stdout, labels[i], r)
	}
}

// parseQueries validates the aggregate list, the aggregated attribute, and
// the where clause against the schema, returning the batch to bound. All
// errors are reported before any engine work starts.
func parseQueries(schema *domain.Schema, aggList, attr, where string) ([]core.Query, []string, error) {
	wherePred, err := parseWhere(schema, where)
	if err != nil {
		return nil, nil, err
	}
	if attr != "" && attr != "-" {
		if _, ok := schema.Index(attr); !ok {
			return nil, nil, fmt.Errorf("unknown attribute %q (schema has %s)",
				attr, strings.Join(schema.Names(), ", "))
		}
	}
	var queries []core.Query
	var labels []string
	for _, name := range strings.Split(aggList, ",") {
		// ParseAgg normalizes case and whitespace itself.
		aggKind, ok := core.ParseAgg(name)
		if !ok {
			return nil, nil, fmt.Errorf("unknown aggregate %q (want COUNT, SUM, AVG, MIN or MAX)", strings.TrimSpace(name))
		}
		if aggKind != core.Count && (attr == "" || attr == "-") {
			return nil, nil, fmt.Errorf("-attr is required for %s", aggKind)
		}
		q := core.Query{Agg: aggKind, Where: wherePred}
		if aggKind != core.Count {
			q.Attr = attr
		}
		queries = append(queries, q)
		labels = append(labels, aggKind.String())
	}
	return queries, labels, nil
}

// parseWhere parses "attr:lo:hi,attr:lo:hi" into a predicate, validating
// attribute names against the schema.
func parseWhere(schema *domain.Schema, where string) (*predicate.P, error) {
	if where == "" || where == "-" {
		return nil, nil
	}
	b := predicate.NewBuilder(schema)
	for _, clause := range strings.Split(where, ",") {
		parts := strings.Split(clause, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad where clause %q (want attr:lo:hi)", clause)
		}
		if _, ok := schema.Index(parts[0]); !ok {
			return nil, fmt.Errorf("unknown attribute %q in where clause (schema has %s)",
				parts[0], strings.Join(schema.Names(), ", "))
		}
		lo, err1 := strconv.ParseFloat(parts[1], 64)
		hi, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad bounds in %q", clause)
		}
		b.Range(parts[0], lo, hi)
	}
	return b.Build(), nil
}

// warnIfOpen prints the soundness warning when the constraint set does not
// cover the domain, and returns whether it is closed.
func warnIfOpen(store *core.Store, solver *sat.Solver) bool {
	if store.Closed(solver) {
		return true
	}
	if w, ok := store.Uncovered(solver); ok {
		fmt.Fprintf(os.Stderr, "warning: constraint set is not closed (e.g. %v is uncovered); bounds hold only if no missing row falls outside all predicates\n", w)
	}
	return false
}

func printRange(w *os.File, label string, r core.Range) {
	if r.Lo > r.Hi {
		fmt.Fprintf(w, "%s: no missing rows can match this query: aggregate undefined\n", label)
		return
	}
	fmt.Fprintf(w, "%s range: [%g, %g]\n", label, r.Lo, r.Hi)
	if r.MaybeEmpty {
		fmt.Fprintln(w, "note: zero matching rows is also consistent with the constraints")
	}
	if r.Reconciled {
		fmt.Fprintln(w, "note: conflicting frequency lower bounds were relaxed (constraints reconciled)")
	}
}

// runScript executes the mutate-and-rebound command stream.
func runScript(store *core.Store, schema *domain.Schema, path string, par int) {
	var in *os.File
	interactive := false
	if path == "-" {
		in = os.Stdin
		// Prompts and forgiving error handling only at a real terminal; a
		// piped script must fail fast like a -script file, or automation
		// would keep mutating a store that is already in the wrong state
		// (and still exit 0).
		if st, err := os.Stdin.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
			interactive = true
		}
	} else {
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = f
	}

	solver := sat.New(schema)
	engine := core.NewEngine(store, solver, core.Options{})
	wasClosed := warnIfOpen(store, solver)

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	if interactive {
		fmt.Print("> ")
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			if interactive {
				fmt.Print("> ")
			}
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		epochBefore := store.Epoch()
		if err := runCommand(store, schema, &engine, line, par); err != nil {
			// Script errors are fatal in batch mode, recoverable at a prompt.
			if interactive {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			} else {
				fail("script line %d: %v", lineNo, err)
			}
		}
		// Re-check closure after mutations (cheap: the store tracks it
		// incrementally) and warn on the closed→open transition, so ranges
		// printed afterwards are not mistaken for unconditional bounds.
		if store.Epoch() != epochBefore {
			if wasClosed {
				wasClosed = warnIfOpen(store, solver)
			} else {
				// Already open (warned at startup or on a prior transition):
				// track silently until a mutation closes it again.
				wasClosed = store.Closed(solver)
			}
		}
		if interactive {
			fmt.Print("> ")
		}
	}
	if err := sc.Err(); err != nil {
		fail("reading script: %v", err)
	}
}

// runCommand executes one script command against the store, rebinding the
// engine after every mutation.
func runCommand(store *core.Store, schema *domain.Schema, engine **core.Engine, line string, par int) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "bound":
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return fmt.Errorf("bound needs an aggregate list (bound AGGS [ATTR] [WHERE])")
		}
		attr, where := "", ""
		if len(fields) > 1 {
			attr = fields[1]
		}
		if len(fields) > 2 {
			where = fields[2]
		}
		if len(fields) > 3 {
			return fmt.Errorf("bound takes at most 3 arguments, got %d", len(fields))
		}
		queries, labels, err := parseQueries(schema, fields[0], attr, where)
		if err != nil {
			return err
		}
		ranges, err := (*engine).BoundBatch(queries, core.BatchOptions{Parallelism: par})
		if err != nil {
			return err
		}
		for i, r := range ranges {
			printRange(os.Stdout, labels[i], r)
		}
	case "add":
		if rest == "" {
			return fmt.Errorf("add needs a constraint JSON object")
		}
		pc, err := core.DecodePC(schema, []byte(rest))
		if err != nil {
			return err
		}
		ids, err := store.AddPCs(pc)
		if err != nil {
			return err
		}
		*engine = (*engine).Rebind()
		fmt.Printf("added constraint #%d (id %d), epoch %d\n", store.Len(), ids[0], store.Epoch())
	case "remove":
		id, err := resolvePC(store, rest)
		if err != nil {
			return err
		}
		if err := store.Remove(id); err != nil {
			return err
		}
		*engine = (*engine).Rebind()
		fmt.Printf("removed constraint id %d, epoch %d\n", id, store.Epoch())
	case "replace":
		ref, js, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("replace needs a constraint reference and a JSON object")
		}
		id, err := resolvePC(store, ref)
		if err != nil {
			return err
		}
		pc, err := core.DecodePC(schema, []byte(strings.TrimSpace(js)))
		if err != nil {
			return err
		}
		if err := store.Replace(id, pc); err != nil {
			return err
		}
		*engine = (*engine).Rebind()
		fmt.Printf("replaced constraint id %d, epoch %d\n", id, store.Epoch())
	case "show":
		snap := store.Snapshot()
		ids := snap.IDs()
		for i, pc := range snap.PCs() {
			fmt.Printf("#%d (id %d): %v\n", i+1, ids[i], pc)
		}
		if len(ids) == 0 {
			fmt.Println("(no constraints)")
		}
	case "stats":
		st := (*engine).CacheStats()
		sst := (*engine).Solver().Stats()
		fmt.Printf("epoch %d, %d constraints; decomp cache: %d hits, %d misses, %d retained across epochs, %d invalidated; SAT: %d checks, %d nodes\n",
			store.Epoch(), store.Len(), st.Hits, st.Misses, st.Retained, st.Invalidated, sst.Checks, sst.Nodes)
	case "closed":
		if store.Closed((*engine).Solver()) {
			fmt.Println("closed: every domain point is covered by some predicate")
		} else if w, ok := store.Uncovered((*engine).Solver()); ok {
			fmt.Printf("NOT closed: e.g. %v is uncovered\n", w)
		}
	default:
		return fmt.Errorf("unknown command %q (want bound, add, remove, replace, show, stats, closed, quit)", cmd)
	}
	return nil
}

// resolvePC resolves a constraint reference to a stable id: an exact name
// match wins (so a constraint that happens to be named "#2" stays
// addressable), then "#N" is tried as a 1-based position.
func resolvePC(store *core.Store, ref string) (core.PCID, error) {
	if ref == "" {
		return 0, fmt.Errorf("missing constraint reference (use #N or a name)")
	}
	snap := store.Snapshot()
	ids := snap.IDs()
	for i, pc := range snap.PCs() {
		if pc.Name == ref {
			return ids[i], nil
		}
	}
	if strings.HasPrefix(ref, "#") {
		n, err := strconv.Atoi(ref[1:])
		if err != nil || n < 1 || n > len(ids) {
			return 0, fmt.Errorf("bad constraint index %q (have 1..%d)", ref, len(ids))
		}
		return ids[n-1], nil
	}
	return 0, fmt.Errorf("no constraint named %q", ref)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "pcrange: "+format+"\n", args...)
	os.Exit(1)
}
