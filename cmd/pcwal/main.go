// Command pcwal inspects a pcserved data directory offline: a read-only
// recovery of the write-ahead log and checkpoints, with no healing and no
// writes of any kind, safe to run against a live or crashed server's
// directory.
//
// Usage:
//
//	pcwal info <dir>               recovery summary: checkpoint, replay, epoch,
//	                               plus the replica leases recorded at the last
//	                               checkpoint and the segments they pin
//	pcwal dump <dir>               recovered store as JSON, byte-identical to
//	                               what a server booted from <dir> serves on
//	                               GET /v1/store — diff the two to prove a
//	                               restart recovered bit-identically
//	pcwal verify <dir>             exit 0 iff the directory recovers cleanly
//	pcwal verify -epoch N <dir>    … and the recovered epoch is exactly N
//	pcwal tail <dir|url>           follow the log live, printing one JSON line
//	                               per committed record; -until-epoch N exits
//	                               once the tail reaches epoch N (scriptable)
//
// A torn final record (the residue of a crash mid-append) is reported but is
// not an error: recovery stops at the last intact frame, exactly as pcserved
// would. Corrupt checkpoints recovery can fall past are likewise reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"pcbound/internal/sat"
	"pcbound/internal/server"
	"pcbound/internal/wal"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "info":
		err = runInfo(rest)
	case "dump":
		err = runDump(rest)
	case "verify":
		err = runVerify(rest)
	case "tail":
		err = runTail(rest)
	default:
		fmt.Fprintf(os.Stderr, "pcwal: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcwal %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage:\n  pcwal info <dir>\n  pcwal dump <dir>\n  pcwal verify [-epoch N] <dir>\n  pcwal tail [-until-epoch N] <dir|url>\n")
}

func dirArg(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("expected exactly one data directory argument")
	}
	return args[0], nil
}

func runInfo(args []string) error {
	dir, err := dirArg(args)
	if err != nil {
		return err
	}
	store, info, err := wal.Recover(dir, nil)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint epoch:    %d\n", info.CheckpointEpoch)
	fmt.Printf("replayed records:    %d\n", info.Replayed)
	fmt.Printf("segments:            %d\n", info.Segments)
	fmt.Printf("recovered epoch:     %d\n", store.Epoch())
	fmt.Printf("constraints:         %d\n", store.Len())
	if info.TornTail {
		fmt.Printf("torn tail:           yes (last record partial; ignored)\n")
	}
	if info.SkippedCheckpoints > 0 {
		fmt.Printf("skipped checkpoints: %d (unreadable)\n", info.SkippedCheckpoints)
	}
	printLeases(dir)
	return nil
}

// printLeases reports the replica leases the primary's last checkpoint
// persisted to leases.json, and which on-disk segment each one pins against
// truncation. Absence of the file just means no lease-aware checkpoint has
// run; it is not an error.
func printLeases(dir string) {
	leases, err := wal.ReadLeaseFile(nil, dir)
	if err != nil || len(leases) == 0 {
		return
	}
	listing, err := wal.DirSource{Dir: dir}.List()
	if err != nil {
		return
	}
	fmt.Printf("replica leases:      %d (as of the last checkpoint)\n", len(leases))
	for _, l := range leases {
		pin := "behind the oldest segment (needs re-bootstrap)"
		if start, ok := wal.PinnedSegment(listing.Segments, l.Acked); ok {
			pin = fmt.Sprintf("pins segment %d", start)
		}
		fmt.Printf("  %-20s acked %d, %s, heartbeat %.1fs before the checkpoint\n",
			l.ID, l.Acked, pin, l.AgeSeconds)
	}
}

func runDump(args []string) error {
	dir, err := dirArg(args)
	if err != nil {
		return err
	}
	store, _, err := wal.Recover(dir, nil)
	if err != nil {
		return err
	}
	snap := store.Snapshot()
	spec := snap.Spec()
	ids := snap.IDs()
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	// Mirror the server's GET /v1/store encoding (json.Encoder, same field
	// order) so `pcwal dump` diffs byte-for-byte against a live response.
	return json.NewEncoder(os.Stdout).Encode(server.StoreResponse{
		Schema:      spec.Schema,
		Constraints: spec.Constraints,
		IDs:         out,
		Epoch:       snap.Epoch(),
		Closed:      snap.Closed(sat.New(snap.Schema())),
	})
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	wantEpoch := fs.Uint64("epoch", 0, "require the recovered epoch to be exactly this (0 = any)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := dirArg(fs.Args())
	if err != nil {
		return err
	}
	store, info, err := wal.Recover(dir, nil)
	if err != nil {
		return err
	}
	if *wantEpoch != 0 && store.Epoch() != *wantEpoch {
		return fmt.Errorf("recovered epoch %d, want %d", store.Epoch(), *wantEpoch)
	}
	fmt.Printf("ok: epoch %d, %d constraints (checkpoint %d + %d records)\n",
		store.Epoch(), store.Len(), info.CheckpointEpoch, info.Replayed)
	return nil
}

// tailLine is one committed record as `pcwal tail` prints it.
type tailLine struct {
	Epoch uint64   `json:"epoch"`
	Kind  string   `json:"kind"`
	IDs   []uint64 `json:"ids"`
}

func runTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	until := fs.Uint64("until-epoch", 0, "exit once the tail has reached this epoch (0 = follow forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one data directory or primary URL argument")
	}
	t := wal.NewTailer(wal.SourceFor(fs.Arg(0)))
	store, _, err := t.Bootstrap()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pcwal tail: bootstrapped at epoch %d\n", store.Epoch())
	enc := json.NewEncoder(os.Stdout)
	for *until == 0 || t.Applied() < *until {
		recs, err := t.Poll(5 * time.Second)
		if err != nil {
			if wal.IsTerminal(err) {
				return err
			}
			fmt.Fprintf(os.Stderr, "pcwal tail: %v (retrying)\n", err)
			time.Sleep(200 * time.Millisecond)
			continue
		}
		for _, rec := range recs {
			line := tailLine{Epoch: rec.Epoch, Kind: rec.Kind.String(), IDs: make([]uint64, len(rec.IDs))}
			for i, id := range rec.IDs {
				line.IDs[i] = uint64(id)
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
		if len(recs) == 0 {
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}
