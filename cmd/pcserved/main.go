// Command pcserved serves hard aggregate ranges over HTTP: a thin,
// consistency-preserving layer over the versioned constraint Store and its
// snapshot-bound Engines (see internal/server for the API contract).
//
// Usage:
//
//	pcserved -spec constraints.json                  # serve on :8080, in-memory only
//	pcserved -spec constraints.json -data-dir /var/lib/pcbound \
//	         -fsync-mode always -checkpoint-every 1024
//
// Endpoints:
//
//	POST /v1/bound          one aggregate query        {"query":{"agg":"SUM","attr":"price"},"epoch":3}
//	POST /v1/batch          a query batch fanned out over the worker pool
//	POST /v1/store/add      add constraints            → {"ids":[…],"epoch":N}
//	POST /v1/store/remove   retract a constraint by id → {"epoch":N}
//	POST /v1/store/replace  swap a constraint in place → {"epoch":N}
//	GET  /v1/store          snapshot spec + ids + epoch (DecodeSet-compatible)
//	GET  /healthz           liveness; 503 while recovering, wedged, or draining
//	GET  /metrics           Prometheus text: latency quantiles, epoch, cache, wal_*
//
// Reads are pinned to a store snapshot (the latest by default, an older
// retained one via "epoch"), so concurrent mutations never perturb an
// in-flight or pinned query. Reads may also opt into tiered precision:
// "precision"/"max_width" request fields answer from a summary tier of
// per-constraint sketches (sound outer intervals in microseconds) when the
// loose interval fits the width budget, escalating to the exact solver
// otherwise; at capacity, tier-opted requests degrade to summary answers
// before any 429 is issued (-no-summary turns the tier off).
// SIGINT/SIGTERM begin a graceful drain:
// /healthz flips to 503, new connections stop, in-flight bounds finish.
//
// With -data-dir the store is crash-safe: every mutation is appended to a
// write-ahead log and acknowledged only once durable per -fsync-mode, the
// log is truncated by periodic checkpoints, and a restart replays the tail
// to a bit-identical store. The listener binds before recovery, answering
// "recovering" on /healthz and 503 elsewhere until replay completes; on
// disk state takes precedence over -spec, which then only seeds an empty
// directory.
//
// With -follow the process is a read-only log-shipping replica instead: it
// bootstraps from the primary's newest checkpoint and tails its WAL — from
// the directory itself (shared disk) or over the primary's /v1/wal
// endpoints (a base URL) — applying each record in log order. Mutations are
// rejected with 503 and a hint at the primary; reads serve the applied
// frontier. Because both nodes replay the identical record stream onto
// identical state, an epoch-pinned read answered by the follower is
// bit-identical to the primary's answer at that epoch — the epoch pin, not
// the node, names the result. Pinned and min_epoch reads ahead of the
// frontier wait up to -staleness-budget for the tail, then 412;
// summary-tier reads never wait, so degraded answers stay available while
// a follower catches up. /healthz reports the role and lag, /metrics grows
// pcserved_repl_* gauges, and a restarted follower re-bootstraps and
// resumes the tail on its own.
//
// Replication is lease-aware in both directions. A follower names a replica
// lease (-lease-id, defaulting to hostname + listen address) and heartbeats
// it on every tailing request, so the primary's checkpoint truncation holds
// the segments each live lease still needs; on the primary, -lease-expiry
// bounds how long a silent lease holds the log and -max-replica-lag caps
// how far a live-but-slow one may pin it. A follower that is truncated past
// anyway self-heals: the tail re-bootstraps from the primary's newest
// checkpoint and atomically swaps the rebuilt store behind the serving
// path — in-flight pinned reads finish bit-identically on the old snapshots,
// new pins into the discarded lineage answer 410, and the recovery is
// counted in /healthz (rebootstraps) and /metrics
// (pcserved_repl_rebootstraps_total) — no restart, no operator.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/sat"
	"pcbound/internal/server"
	"pcbound/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		specPath    = flag.String("spec", "", "path to the boot constraint spec JSON (required without -data-dir; with it, seeds an empty data dir)")
		dataDir     = flag.String("data-dir", "", "directory for the write-ahead log and checkpoints (empty = in-memory only, state is lost on restart)")
		fsyncMode   = flag.String("fsync-mode", "always", "when a mutation ack is durable: always (fsync first) or none (OS cache; survives SIGKILL, not power loss)")
		ckptEvery   = flag.Int("checkpoint-every", 1024, "mutations between snapshot checkpoints (and log truncations); 0 disables")
		walWindow   = flag.Duration("wal-window", time.Millisecond, "group-commit window: how long a flush waits to batch concurrent mutations into one fsync")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing bound/batch requests before 429 (0 = 4x GOMAXPROCS)")
		retain      = flag.Int("retain-epochs", 0, "snapshot epochs kept servable for pinned reads (0 = default)")
		maxPar      = flag.Int("max-parallel", 0, "ceiling (and default) for a batch request's worker fan-out (0 = GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 0, "max queries per /v1/batch request (0 = default)")
		shutdownT   = flag.Duration("shutdown-timeout", 30*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM")
		cacheSize   = flag.Int("decomp-cache", 0, "decomposition cache regions (0 = default)")
		noSummary   = flag.Bool("no-summary", false, "disable the tiered-precision summary overlay: precision/max_width requests always escalate to exact, saturation always sheds with 429")
		follow      = flag.String("follow", "", "run as a read-only follower tailing a primary's WAL: a data directory (shared disk) or the primary's base URL (http://host:port)")
		primaryHint = flag.String("primary", "", "advertised primary base URL returned with rejected mutations (defaults to -follow when it is a URL)")
		staleness   = flag.Duration("staleness-budget", 2*time.Second, "follower: how long an epoch-pinned or min_epoch read waits for the tail to catch up before 412")
		replPoll    = flag.Duration("repl-poll", 50*time.Millisecond, "follower: pause between polls when the tail is idle (directory sources; URL sources long-poll)")
		leaseID     = flag.String("lease-id", "", "follower: replica lease name heartbeated to the primary so truncation holds segments this follower still needs (default: hostname + listen address)")
		leaseExpiry = flag.Duration("lease-expiry", 0, "primary: drop a replica lease after this long without a heartbeat (0 = 30s default)")
		maxLag      = flag.Uint64("max-replica-lag", 0, "primary: stop holding truncation for a live lease more than this many epochs behind the frontier (0 = hold without limit)")
	)
	flag.Parse()
	if *follow != "" && (*specPath != "" || *dataDir != "") {
		fmt.Fprintln(os.Stderr, "pcserved: -follow is exclusive with -spec and -data-dir (a follower's state comes from the primary)")
		os.Exit(1)
	}
	if *specPath == "" && *dataDir == "" && *follow == "" {
		fmt.Fprintln(os.Stderr, "pcserved: missing -spec (or -data-dir with existing state, or -follow)")
		os.Exit(1)
	}
	mode, err := wal.ParseMode(*fsyncMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcserved: %v\n", err)
		os.Exit(1)
	}

	var boot *core.Store
	if *specPath != "" {
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcserved: %v\n", err)
			os.Exit(1)
		}
		if boot, _, err = core.DecodeSet(raw); err != nil {
			fmt.Fprintf(os.Stderr, "pcserved: %v\n", err)
			os.Exit(1)
		}
	}

	// Bind before recovery: orchestrators see "recovering" instead of a
	// connection refused, and traffic gets an honest 503 + Retry-After.
	gate := &server.RecoveryGate{}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pcserved: %v", err)
	}
	srv := &http.Server{Handler: gate, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	var (
		store  *core.Store
		schema *domain.Schema
		dur    *wal.Manager
		tailer *wal.Tailer
	)
	if *follow != "" {
		// Bootstrap from the primary's newest checkpoint. "No checkpoint
		// yet" and connection failures are transient (the primary may still
		// be coming up); terminal conditions are configuration problems.
		tailer = wal.NewTailer(wal.SourceFor(*follow))
		// The lease protects this follower from the moment its first
		// bootstrap request lands: every tailing request doubles as a
		// heartbeat, so the primary's truncation holds our segments.
		id := *leaseID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "follower"
			}
			id = host + *addr
		}
		tailer.SetLease(id)
		start := time.Now()
		for {
			store, schema, err = tailer.Bootstrap()
			if err == nil {
				break
			}
			if wal.IsTerminal(err) {
				log.Fatalf("pcserved: follower bootstrap: %v", err)
			}
			log.Printf("pcserved: follower bootstrap: %v (retrying)", err)
			time.Sleep(time.Second)
		}
		log.Printf("pcserved: follower bootstrapped at epoch %d from %s in %v",
			store.Epoch(), *follow, time.Since(start).Round(time.Millisecond))
	}
	if *dataDir != "" {
		start := time.Now()
		dur, err = wal.Open(wal.Options{
			Dir:             *dataDir,
			Mode:            mode,
			Window:          *walWindow,
			CheckpointEvery: *ckptEvery,
			Boot:            boot,
			LeaseExpiry:     *leaseExpiry,
			MaxReplicaLag:   *maxLag,
		})
		if err != nil {
			log.Fatalf("pcserved: recovery: %v", err)
		}
		store, schema = dur.Store(), dur.Schema()
		info := dur.Info()
		if info.BootIgnored {
			log.Printf("pcserved: %s has state (epoch %d); ignoring -spec", *dataDir, info.Epoch)
		}
		if info.TornTail {
			log.Printf("pcserved: healed a torn record at the log tail")
		}
		if info.SkippedCheckpoints > 0 {
			log.Printf("pcserved: skipped %d unreadable checkpoint(s)", info.SkippedCheckpoints)
		}
		log.Printf("pcserved: recovered epoch %d (checkpoint %d + %d records, %d segments) in %v",
			info.Epoch, info.CheckpointEpoch, info.Replayed, info.Segments, time.Since(start).Round(time.Millisecond))
	} else if *follow == "" {
		store, schema = boot, boot.Schema()
	}

	solver := sat.New(schema)
	if !store.Closed(solver) {
		if w, ok := store.Uncovered(solver); ok {
			log.Printf("warning: constraint set is not closed (e.g. %v is uncovered); served bounds hold only if no missing row falls outside all predicates", w)
		}
	}

	var replica *server.Replica
	if *follow != "" {
		hint := *primaryHint
		if hint == "" && strings.HasPrefix(*follow, "http") {
			hint = *follow
		}
		replica = &server.Replica{Primary: hint, Source: *follow, StalenessBudget: *staleness}
	}
	s := server.New(store, solver, server.Config{
		MaxInflight:    *maxInflight,
		RetainEpochs:   *retain,
		MaxParallelism: *maxPar,
		MaxBatch:       *maxBatch,
		Engine:         core.Options{DecompCacheSize: *cacheSize},
		Durability:     dur,
		DisableSummary: *noSummary,
		Replica:        replica,
	})
	gate.Activate(s.Handler())
	applyCtx, stopApply := context.WithCancel(context.Background())
	defer stopApply()
	if tailer != nil {
		go followLoop(applyCtx, s, tailer, *replPoll)
		log.Printf("pcserved: follower serving (epoch %d) on %s, tailing %s", store.Epoch(), *addr, *follow)
	} else {
		log.Printf("pcserved: serving %d constraints (epoch %d) on %s", store.Len(), store.Epoch(), *addr)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// Serve never returns nil.
		log.Fatalf("pcserved: %v", err)
	case sig := <-sigCh:
		log.Printf("pcserved: %v: draining (timeout %v)", sig, *shutdownT)
	}

	s.StartDraining()
	stopApply()
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("pcserved: drain incomplete: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pcserved: %v", err)
	}
	if dur != nil {
		// A parting checkpoint makes the next boot's replay near-instant; the
		// log alone is already sufficient, so failure here only costs time.
		if err := dur.Checkpoint(); err != nil && dur.Err() == nil {
			log.Printf("pcserved: final checkpoint failed: %v", err)
		}
		if err := dur.Close(); err != nil {
			log.Printf("pcserved: closing wal: %v", err)
		}
	}
	log.Printf("pcserved: drained cleanly (epoch %d)", store.Epoch())
}

// walPollWait is how long a follower's segment fetch long-polls at the live
// edge (URL sources; directory sources return immediately and the idle
// pause paces them instead).
const walPollWait = 10 * time.Second

// followLoop drives a follower's replication tail: records stream from the
// primary's log into the serving store in order until drain (ctx) or a
// terminal fault. Transient source errors — the primary restarting, network
// blips — are retried with backoff. Falling behind the primary's truncation
// self-heals: the loop re-bootstraps from the newest checkpoint and swaps
// the serving state in place. Other terminal faults (a diverged log) freeze
// the frontier and flip /healthz to replication_failed.
func followLoop(ctx context.Context, s *server.Server, t *wal.Tailer, idle time.Duration) {
	if idle <= 0 {
		idle = 50 * time.Millisecond
	}
	backoff := idle
	for ctx.Err() == nil {
		recs, err := t.Poll(walPollWait)
		s.ObservePrimary(t.Frontier())
		if err != nil {
			if errors.Is(err, wal.ErrFellBehind) {
				log.Printf("pcserved: tail fell behind the primary's truncation; re-bootstrapping from the newest checkpoint")
				if !rebootstrap(ctx, s, t) {
					return
				}
				backoff = idle
				continue
			}
			if wal.IsTerminal(err) {
				log.Printf("pcserved: replication halted: %v", err)
				s.ReplicationFailed(err)
				return
			}
			s.NoteTailRestart()
			log.Printf("pcserved: tail error (will retry): %v", err)
			if !sleepCtx(ctx, backoff) {
				return
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = idle
		for _, rec := range recs {
			if err := s.ApplyReplicated(rec); err != nil {
				// The store refused a record the log vouched for: state and
				// log disagree, which no retry can reconcile.
				log.Printf("pcserved: replication halted: applying epoch %d: %v", rec.Epoch, err)
				s.ReplicationFailed(err)
				return
			}
		}
		if len(recs) == 0 {
			if !sleepCtx(ctx, idle) {
				return
			}
		}
	}
}

// rebootstrap recovers a fallen-behind follower without a restart: it
// re-runs Bootstrap against the source (the tailer repositions itself at the
// newest checkpoint) and swaps the rebuilt store into the server. Transient
// bootstrap errors retry forever — the serving store keeps answering at its
// frozen frontier meanwhile — so only a terminal fault (or drain) gives up.
// Returns true when the tail may resume polling.
func rebootstrap(ctx context.Context, s *server.Server, t *wal.Tailer) bool {
	for ctx.Err() == nil {
		store, schema, err := t.Bootstrap()
		if err == nil {
			if err := s.Rebootstrap(store, sat.New(schema)); err != nil {
				log.Printf("pcserved: replication halted: %v", err)
				s.ReplicationFailed(err)
				return false
			}
			log.Printf("pcserved: follower re-bootstrapped at epoch %d", store.Epoch())
			return true
		}
		if wal.IsTerminal(err) {
			log.Printf("pcserved: replication halted: re-bootstrap: %v", err)
			s.ReplicationFailed(err)
			return false
		}
		log.Printf("pcserved: re-bootstrap: %v (retrying)", err)
		if !sleepCtx(ctx, time.Second) {
			return false
		}
	}
	return false
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
