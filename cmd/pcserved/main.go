// Command pcserved serves hard aggregate ranges over HTTP: a thin,
// consistency-preserving layer over the versioned constraint Store and its
// snapshot-bound Engines (see internal/server for the API contract).
//
// Usage:
//
//	pcserved -spec constraints.json                  # serve on :8080
//	pcserved -spec constraints.json -addr :9000 \
//	         -max-inflight 64 -retain-epochs 16
//
// Endpoints:
//
//	POST /v1/bound          one aggregate query        {"query":{"agg":"SUM","attr":"price"},"epoch":3}
//	POST /v1/batch          a query batch fanned out over the worker pool
//	POST /v1/store/add      add constraints            → {"ids":[…],"epoch":N}
//	POST /v1/store/remove   retract a constraint by id → {"epoch":N}
//	POST /v1/store/replace  swap a constraint in place → {"epoch":N}
//	GET  /v1/store          snapshot spec + ids + epoch (DecodeSet-compatible)
//	GET  /healthz           liveness; 503 once draining
//	GET  /metrics           Prometheus text: latency quantiles, epoch, cache
//
// Reads are pinned to a store snapshot (the latest by default, an older
// retained one via "epoch"), so concurrent mutations never perturb an
// in-flight or pinned query. SIGINT/SIGTERM begin a graceful drain:
// /healthz flips to 503, new connections stop, in-flight bounds finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/sat"
	"pcbound/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		specPath    = flag.String("spec", "", "path to the boot constraint spec JSON (required; may contain zero constraints)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing bound/batch requests before 429 (0 = 4x GOMAXPROCS)")
		retain      = flag.Int("retain-epochs", 0, "snapshot epochs kept servable for pinned reads (0 = default)")
		maxPar      = flag.Int("max-parallel", 0, "ceiling (and default) for a batch request's worker fan-out (0 = GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 0, "max queries per /v1/batch request (0 = default)")
		shutdownT   = flag.Duration("shutdown-timeout", 30*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM")
		cacheSize   = flag.Int("decomp-cache", 0, "decomposition cache regions (0 = default)")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "pcserved: missing -spec")
		os.Exit(1)
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcserved: %v\n", err)
		os.Exit(1)
	}
	store, schema, err := core.DecodeSet(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcserved: %v\n", err)
		os.Exit(1)
	}

	solver := sat.New(schema)
	if !store.Closed(solver) {
		if w, ok := store.Uncovered(solver); ok {
			log.Printf("warning: constraint set is not closed (e.g. %v is uncovered); served bounds hold only if no missing row falls outside all predicates", w)
		}
	}

	s := server.New(store, solver, server.Config{
		MaxInflight:    *maxInflight,
		RetainEpochs:   *retain,
		MaxParallelism: *maxPar,
		MaxBatch:       *maxBatch,
		Engine:         core.Options{DecompCacheSize: *cacheSize},
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("pcserved: serving %d constraints (epoch %d) on %s", store.Len(), store.Epoch(), *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// ListenAndServe never returns nil.
		log.Fatalf("pcserved: %v", err)
	case sig := <-sigCh:
		log.Printf("pcserved: %v: draining (timeout %v)", sig, *shutdownT)
	}

	s.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("pcserved: drain incomplete: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pcserved: %v", err)
	}
	log.Printf("pcserved: drained cleanly (epoch %d)", store.Epoch())
}
