// Command pcvet is the repo's invariant checker: a static-analysis suite
// enforcing bit-identical determinism (no map-order leaks into
// reductions), snapshot immutability (no writes through frozen state),
// lock discipline (`// guarded by mu` annotations), and request-context
// propagation in the serving layer.
//
// Two invocation modes:
//
//	go vet -vettool=$(which pcvet) ./...   # vettool protocol (CI)
//	pcvet ./...                            # standalone driver
//
// Both exit 0 when clean, non-zero on findings. Deliberate exceptions are
// suppressed in source with `//pcvet:ignore <analyzer> <justification>`;
// the justification is mandatory and checked.
package main

import (
	"fmt"
	"os"

	"pcbound/internal/analysis"
	"pcbound/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	analyzers := registry.Analyzers()
	if code, handled := analysis.VetTool("pcvet", args, analyzers); handled {
		return code
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcvet:", err)
		return 1
	}
	diags, res, err := analysis.RunPackages(dir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcvet:", err)
		return 1
	}
	res.Print(os.Stderr)
	if len(diags) > 0 {
		return 2
	}
	return 0
}
