// Command pcrouter is the failover front door for a pcserved fleet: one
// address clients point at, behind which mutations always reach the primary
// and reads load-balance across every healthy backend (see internal/router
// for the routing policy).
//
// Usage:
//
//	pcrouter -primary http://primary:8080 \
//	         -replica http://f1:8081 -replica http://f2:8082
//
// Mutations (POST /v1/store/*) are forwarded to the primary and never
// retried; when the primary is unhealthy they fail fast with 503, a
// Retry-After, and the primary's address in the error body. Reads
// (POST /v1/bound, /v1/batch) prefer followers — balanced by in-flight
// load — honoring each request's epoch/min_epoch against the follower
// frontiers tracked from health polls, and fail over to another backend on
// connection errors or gateway-class 5xxs. Backends that fail are ejected
// and re-probed on a jittered exponential backoff. GET /healthz reports
// per-backend state ("degraded" = reads serve but mutations cannot);
// GET /metrics exports pcrouter_* counters. SIGINT/SIGTERM drain in-flight
// requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pcbound/internal/router"
)

// replicaList collects repeated -replica flags (comma-separation works too).
type replicaList []string

func (r *replicaList) String() string { return strings.Join(*r, ",") }

func (r *replicaList) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			*r = append(*r, u)
		}
	}
	return nil
}

func main() {
	var replicas replicaList
	var (
		addr       = flag.String("addr", ":8079", "listen address")
		primary    = flag.String("primary", "", "primary pcserved base URL (required; mutations route here)")
		checkEvery = flag.Duration("check-interval", 500*time.Millisecond, "health-poll period for healthy backends")
		checkTO    = flag.Duration("check-timeout", 2*time.Second, "timeout for one health probe")
		maxBackoff = flag.Duration("probe-backoff-max", 8*time.Second, "cap on the re-probe backoff for ejected backends")
		shutdownT  = flag.Duration("shutdown-timeout", 30*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM")
	)
	flag.Var(&replicas, "replica", "follower base URL (repeatable, or comma-separated)")
	flag.Parse()
	if *primary == "" {
		fmt.Fprintln(os.Stderr, "pcrouter: missing -primary")
		os.Exit(1)
	}

	r, err := router.New(router.Options{
		Primary:         *primary,
		Replicas:        replicas,
		CheckInterval:   *checkEvery,
		CheckTimeout:    *checkTO,
		MaxProbeBackoff: *maxBackoff,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatalf("pcrouter: %v", err)
	}
	defer r.Close()
	srv := &http.Server{Addr: *addr, Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("pcrouter: routing %d backend(s) (primary %s) on %s", 1+len(replicas), *primary, *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("pcrouter: %v", err)
	case sig := <-sigCh:
		log.Printf("pcrouter: %v: draining (timeout %v)", sig, *shutdownT)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *shutdownT)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("pcrouter: drain incomplete: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pcrouter: %v", err)
	}
	log.Print("pcrouter: drained cleanly")
}
