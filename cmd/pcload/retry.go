package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// retrier issues HTTP requests with bounded retries: exponential backoff with
// jitter for transient failures (429 backpressure, 503 recovery/drain windows,
// connection-level errors), fatal errors surfaced immediately. A Retry-After
// header, when the server sends one, overrides the computed backoff — the
// server knows its own recovery timeline better than a client-side curve.
//
// This is what lets pcload ride through a pcserved restart: the crash
// gauntlet SIGKILLs the server mid-load, and every worker's in-flight request
// collapses into ECONNREFUSED/EOF until the replacement finishes replaying
// its log (during which the recovery gate answers 503 + Retry-After).
type retrier struct {
	client   *http.Client
	attempts int           // tries per request, first included
	base     time.Duration // backoff before the first retry
	max      time.Duration // backoff ceiling
	sleep    func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu; jitter only, no reproducibility contract

	// Outcome counters for the end-of-run summary.
	retried429       atomic.Int64
	retried503       atomic.Int64
	retried412       atomic.Int64
	retriedTransport atomic.Int64
	exhausted        atomic.Int64
}

func newRetrier(client *http.Client, attempts int, seed int64) *retrier {
	if attempts < 1 {
		attempts = 1
	}
	return &retrier{
		client:   client,
		attempts: attempts,
		base:     25 * time.Millisecond,
		max:      2 * time.Second,
		sleep:    time.Sleep,
		rng:      rand.New(rand.NewSource(seed ^ 0x5e3779b97f4a7c15)),
	}
}

// post sends req as JSON and, on 200, decodes the body into out (when
// non-nil). Returns the final status code and body; err is non-nil only for
// hard failures (exhausted retries on transport errors, malformed responses,
// marshalling bugs). A final 429/503 after exhausted retries is returned as
// its status code, not an error — the caller classifies it.
func (r *retrier) post(url string, req, out any) (int, []byte, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	return r.do(func() (*http.Response, error) {
		return r.client.Post(url, "application/json", bytes.NewReader(raw))
	}, url, out)
}

// get fetches url with the same retry policy as post.
func (r *retrier) get(url string, out any) (int, []byte, error) {
	return r.do(func() (*http.Response, error) {
		return r.client.Get(url)
	}, url, out)
}

func (r *retrier) do(send func() (*http.Response, error), url string, out any) (int, []byte, error) {
	var (
		lastCode int
		lastBody []byte
		lastErr  error
	)
	for attempt := 0; ; attempt++ {
		resp, err := send()
		if err != nil {
			if !retriableErr(err) {
				return 0, nil, err
			}
			lastCode, lastBody, lastErr = 0, nil, err
			if attempt+1 >= r.attempts {
				r.exhausted.Add(1)
				return 0, nil, fmt.Errorf("%d attempts: %w", r.attempts, err)
			}
			r.retriedTransport.Add(1)
			r.sleep(r.backoff(attempt, 0))
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			// A response torn mid-body (server killed while writing) is a
			// transport failure, not a protocol one.
			if !retriableErr(rerr) {
				return resp.StatusCode, nil, rerr
			}
			lastCode, lastBody, lastErr = 0, nil, rerr
			if attempt+1 >= r.attempts {
				r.exhausted.Add(1)
				return 0, nil, fmt.Errorf("%d attempts: %w", r.attempts, rerr)
			}
			r.retriedTransport.Add(1)
			r.sleep(r.backoff(attempt, 0))
			continue
		}
		lastCode, lastBody, lastErr = resp.StatusCode, body, nil
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusPreconditionFailed:
			// 412 joins the transient set for replicated fleets: a min_epoch
			// read that outran a follower's tail (or briefly outran the
			// primary behind a router) succeeds on a later attempt once the
			// frontier catches up — same backoff, same Retry-After override.
			if attempt+1 >= r.attempts {
				r.exhausted.Add(1)
				return lastCode, lastBody, lastErr
			}
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				r.retried429.Add(1)
			case http.StatusServiceUnavailable:
				r.retried503.Add(1)
			default:
				r.retried412.Add(1)
			}
			r.sleep(r.backoff(attempt, retryAfter(resp.Header)))
			continue
		case http.StatusOK:
			if out != nil {
				if err := json.Unmarshal(body, out); err != nil {
					return resp.StatusCode, body, fmt.Errorf("decoding %s response: %w (%s)", url, err, body)
				}
			}
			return resp.StatusCode, body, nil
		default:
			// 4xx/5xx outside the transient pair: a client bug or a server
			// state no amount of retrying fixes (410 evicted epoch, 400 bad
			// request). Surface it once, immediately.
			return resp.StatusCode, body, nil
		}
	}
}

// backoff computes the pause before retry number attempt+1: exponential from
// r.base with full jitter on the upper half, capped at r.max — except when
// the server named its own delay via Retry-After, which wins if longer.
func (r *retrier) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := r.base << attempt
	if d > r.max || d <= 0 { // <= 0: shift overflow
		d = r.max
	}
	r.mu.Lock()
	jittered := d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	r.mu.Unlock()
	if retryAfter > jittered {
		return retryAfter
	}
	return jittered
}

// retryAfter parses a Retry-After header: delay-seconds or an HTTP-date.
// Returns 0 when absent or unparseable.
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// retriableErr classifies a transport error: true for the failures a server
// restart or overload produces (refused/reset connections, torn responses,
// timeouts), false for everything else (bad URLs, canceled contexts, TLS
// misconfiguration) where a retry would just repeat the bug.
func retriableErr(err error) bool {
	switch {
	case errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF):
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// summary prints the retry accounting for the run; one line, always, so a
// zero-retry run is distinguishable from a run that never reported.
func (r *retrier) summary(w io.Writer) {
	fmt.Fprintf(w, "pcload: retries: %d on 429, %d on 503, %d on 412, %d transport; %d requests exhausted all %d attempts\n",
		r.retried429.Load(), r.retried503.Load(), r.retried412.Load(), r.retriedTransport.Load(),
		r.exhausted.Load(), r.attempts)
}
