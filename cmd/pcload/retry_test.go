package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// testRetrier returns a retrier whose sleeps are recorded instead of taken.
func testRetrier(attempts int) (*retrier, *[]time.Duration) {
	var slept []time.Duration
	r := newRetrier(&http.Client{Timeout: 5 * time.Second}, attempts, 1)
	r.sleep = func(d time.Duration) { slept = append(slept, d) }
	return r, &slept
}

func TestRetryTransientThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.WriteHeader(http.StatusServiceUnavailable)
		case 2:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			fmt.Fprintln(w, `{"epoch":7}`)
		}
	}))
	defer ts.Close()

	r, slept := testRetrier(5)
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	code, _, err := r.post(ts.URL, map[string]int{"x": 1}, &out)
	if err != nil || code != http.StatusOK || out.Epoch != 7 {
		t.Fatalf("got code %d, epoch %d, err %v", code, out.Epoch, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if r.retried503.Load() != 1 || r.retried429.Load() != 1 || r.exhausted.Load() != 0 {
		t.Fatalf("counters: 503=%d 429=%d exhausted=%d", r.retried503.Load(), r.retried429.Load(), r.exhausted.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
}

// TestRetry412StaleReplica: a 412 (min_epoch ahead of a replica's frontier)
// is transient in a replicated fleet — the read is retried with the same
// jittered backoff, honoring the server's Retry-After, and counted in its
// own bucket for the summary's per-status breakdown.
func TestRetry412StaleReplica(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusPreconditionFailed)
			return
		}
		fmt.Fprintln(w, `{"epoch":9}`)
	}))
	defer ts.Close()

	r, slept := testRetrier(5)
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	code, _, err := r.post(ts.URL, map[string]int{"min_epoch": 9}, &out)
	if err != nil || code != http.StatusOK || out.Epoch != 9 {
		t.Fatalf("got code %d, epoch %d, err %v", code, out.Epoch, err)
	}
	if r.retried412.Load() != 2 || r.exhausted.Load() != 0 {
		t.Fatalf("counters: 412=%d exhausted=%d, want 2 and 0", r.retried412.Load(), r.exhausted.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
}

func TestRetryExhaustionSurfacesFinalStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	r, slept := testRetrier(3)
	code, _, err := r.post(ts.URL, nil, nil)
	if err != nil {
		t.Fatalf("a final 503 is a status, not an error: %v", err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503", code)
	}
	if r.exhausted.Load() != 1 || len(*slept) != 2 {
		t.Fatalf("exhausted=%d slept=%d, want 1 and 2", r.exhausted.Load(), len(*slept))
	}
}

func TestFatalStatusNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()

	r, slept := testRetrier(5)
	code, _, err := r.post(ts.URL, nil, nil)
	if err != nil || code != http.StatusBadRequest {
		t.Fatalf("got code %d err %v, want immediate 400", code, err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("400 was retried: %d calls, %d sleeps", calls.Load(), len(*slept))
	}
}

func TestRetryConnectionRefused(t *testing.T) {
	// Grab a port that is then closed again: connecting must ECONNREFUSED.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	r, slept := testRetrier(4)
	_, _, err = r.post(dead, nil, nil)
	if err == nil {
		t.Fatal("post to a closed port succeeded")
	}
	if r.retriedTransport.Load() != 3 || r.exhausted.Load() != 1 {
		t.Fatalf("transport=%d exhausted=%d, want 3 and 1 (err %v)", r.retriedTransport.Load(), r.exhausted.Load(), err)
	}
	if len(*slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(*slept))
	}
}

func TestRetryAfterOverridesBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	r, slept := testRetrier(2)
	if code, _, err := r.post(ts.URL, nil, nil); err != nil || code != http.StatusTooManyRequests {
		t.Fatalf("code %d err %v", code, err)
	}
	if len(*slept) != 1 || (*slept)[0] != 30*time.Second {
		t.Fatalf("slept %v, want exactly the server's 30s Retry-After", *slept)
	}
}

func TestBackoffBounds(t *testing.T) {
	r, _ := testRetrier(10)
	for attempt := 0; attempt < 40; attempt++ {
		lo := r.base << attempt
		if lo > r.max || lo <= 0 {
			lo = r.max
		}
		for i := 0; i < 20; i++ {
			d := r.backoff(attempt, 0)
			if d < lo/2 || d > lo {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo/2, lo)
			}
		}
	}
	if d := r.backoff(0, time.Minute); d != time.Minute {
		t.Fatalf("Retry-After 1m gave %v", d)
	}
}

func TestRetriableErrClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{syscall.ECONNREFUSED, true},
		{fmt.Errorf("post: %w", syscall.ECONNRESET), true},
		{io.ErrUnexpectedEOF, true},
		{io.EOF, true},
		{errors.New("no such host"), false},
		{fmt.Errorf("unsupported protocol scheme %q", "htp"), false},
	} {
		if got := retriableErr(tc.err); got != tc.want {
			t.Errorf("retriableErr(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
