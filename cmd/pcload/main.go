// Command pcload is a closed-loop load generator for pcserved: a fixed pool
// of workers, each waiting for its response before issuing the next request,
// driving a configurable mix of single bounds, batches, and store mutations.
// It reports throughput and p50/p99 latency per operation and exits non-zero
// on any hard failure (non-2xx other than 429 backpressure, or a response
// that fails verification).
//
// Before the load phase it can verify serving correctness end to end: it
// fetches the store spec (GET /v1/store), rebuilds the same constraint set
// locally with the library, and checks that snapshot-pinned HTTP reads
// return bit-identical ranges to a direct Engine.Bound on the same
// constraint state — the serving layer must add transport, not error. The
// same phase cross-checks the tiered-precision contract: forced-summary
// reads of the same queries must return supersets of the local exact range.
//
// -precision/-max-width opt the load phase's queries into tiered serving;
// the summary then reports the served precision mix (how many queries the
// summary tier answered vs. the exact solver). -skew draws query regions
// and mutation targets from a zipf distribution instead of uniformly, so
// hot-spot workloads (where the same decompositions are hit repeatedly and
// mutations chase the queries) can be generated alongside uniform ones.
//
// Against a replicated deployment, -target takes a comma-separated
// primary[,replica,...] list: mutations go to the primary, reads fan out
// across the replicas, and the -verify phase additionally posts every
// pinned query to each replica and requires the answer bitwise identical to
// the primary's — the end-to-end form of the replication bit-identity
// guarantee (a replica still catching up holds the read until its tail
// reaches the pinned epoch).
//
// Usage:
//
//	pcload -addr http://127.0.0.1:8080                  # 10s, 8 workers
//	pcload -addr http://127.0.0.1:8080 -quick           # 2s CI smoke
//	pcload -duration 30s -concurrency 32 \
//	       -mix bound=6,batch=2,mutate=2 -verify 100
//	pcload -skew 1.2 -precision auto -max-width 500     # skewed, tier-opted
//	pcload -target http://primary:8080,http://replica:8081 -verify 50
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pcbound/internal/core"
	"pcbound/internal/domain"
	"pcbound/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "pcserved base URL")
		target      = flag.String("target", "", "comma-separated pcserved base URLs: primary[,replica,...] — mutations go to the primary, reads fan out across the replicas (overrides -addr)")
		duration    = flag.Duration("duration", 10*time.Second, "load phase duration")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers")
		mix         = flag.String("mix", "bound=6,batch=2,mutate=2", "operation weights, e.g. bound=6,batch=2,mutate=2")
		batchSize   = flag.Int("batch-size", 8, "queries per batch request")
		verifyN     = flag.Int("verify", 50, "pinned-read queries to verify bit-identical against a local engine before the load phase (0 = skip)")
		seed        = flag.Int64("seed", 1, "random seed")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		retries     = flag.Int("retries", 8, "attempts per request for transient failures (429/503/connection errors); 1 disables retries")
		quick       = flag.Bool("quick", false, "CI smoke configuration: -duration 2s -concurrency 4 -verify 25")
		skew        = flag.Float64("skew", 0, "zipf skew for query regions and mutation targets (0 = uniform; larger = hotter hot spot)")
		precision   = flag.String("precision", "", "tier request field on bound/batch: exact, auto or summary (empty = omit)")
		maxWidth    = flag.Float64("max-width", -1, "tier width budget on bound/batch; implies auto when -precision is empty (negative = omit)")
	)
	flag.Parse()
	if *quick {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["duration"] {
			*duration = 2 * time.Second
		}
		if !set["concurrency"] {
			*concurrency = 4
		}
		if !set["verify"] {
			*verifyN = 25
		}
	}
	if *concurrency < 1 || *batchSize < 1 {
		fail("concurrency and batch-size must be >= 1")
	}
	if *skew < 0 {
		fail("-skew must be >= 0")
	}
	switch *precision {
	case "", "exact", "auto", "summary":
	default:
		fail("-precision must be exact, auto or summary")
	}
	var budget *server.Num
	if *maxWidth >= 0 {
		n := server.Num(*maxWidth)
		budget = &n
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fail("%v", err)
	}

	client := &http.Client{Timeout: *timeout}
	// -target names a replication topology: the first URL takes mutations
	// (and seeds verification), the rest serve reads. Without replicas every
	// operation goes to the primary, exactly as -addr always worked.
	var replicas []string
	base := strings.TrimRight(*addr, "/")
	if *target != "" {
		parts := strings.Split(*target, ",")
		base = strings.TrimRight(strings.TrimSpace(parts[0]), "/")
		for _, p := range parts[1:] {
			if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
				replicas = append(replicas, p)
			}
		}
	}
	readBases := replicas
	if len(readBases) == 0 {
		readBases = []string{base}
	}
	r := newRetrier(client, *retries, *seed)

	st, err := fetchStore(r, base)
	if err != nil {
		fail("fetching %s/v1/store: %v", base, err)
	}
	schema, err := schemaOf(st)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("pcload: target %s — %d constraints, epoch %d, %d attributes\n",
		base, len(st.Constraints), st.Epoch, schema.Len())
	if len(replicas) > 0 {
		fmt.Printf("pcload: fanning reads across %d replica(s): %s\n", len(replicas), strings.Join(replicas, ", "))
	}

	if *verifyN > 0 {
		summaries, err := verifyPinned(r, base, replicas, st, schema, *verifyN, *seed)
		if err != nil {
			fail("verification: %v", err)
		}
		fmt.Printf("pcload: verified %d pinned reads bit-identical to a local engine at epoch %d\n", *verifyN, st.Epoch)
		if len(replicas) > 0 {
			fmt.Printf("pcload: verified %d pinned reads bit-identical across %d replica(s)\n", *verifyN, len(replicas))
		}
		fmt.Printf("pcload: verified %d summary-tier responses are supersets of the local exact range (%d escalated or untiered)\n",
			summaries, *verifyN-summaries)
	}

	stats := runLoad(r, base, schema, loadConfig{
		duration:    *duration,
		concurrency: *concurrency,
		weights:     weights,
		batchSize:   *batchSize,
		seed:        *seed,
		skew:        *skew,
		precision:   *precision,
		maxWidth:    budget,
		readBases:   readBases,
	})
	stats.report(os.Stdout, *duration)
	r.summary(os.Stdout)
	reportServerMetrics(client, base, os.Stdout)
	if stats.hardErrors() > 0 {
		os.Exit(1)
	}
}

// reportServerMetrics scrapes /metrics after the load phase and surfaces the
// server-side intra-query picture: the shared scheduler's queue depth and
// task counters, and the cell-bound cache hit rate. Absent counters (an
// older server) are skipped rather than failing the run — the load result
// stands on its own.
func reportServerMetrics(client *http.Client, base string, w io.Writer) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintf(w, "pcload: metrics scrape failed: %v\n", err)
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		fmt.Fprintf(w, "pcload: metrics scrape failed: status %d\n", resp.StatusCode)
		return
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			vals[fields[0]] = v
		}
	}
	if tasks, ok := vals["pcserved_sched_tasks_total"]; ok {
		fmt.Fprintf(w, "pcload: server scheduler: %d workers, queue depth %.0f (max %.0f), %.0f cell tasks (%.0f run by waiting callers)\n",
			int(vals["pcserved_sched_workers"]), vals["pcserved_sched_queue_depth"],
			vals["pcserved_sched_queue_depth_max"], tasks, vals["pcserved_sched_caller_tasks_total"])
	}
	hits, hok := vals["pcserved_cellcache_hits_total"]
	misses, mok := vals["pcserved_cellcache_misses_total"]
	if hok && mok && hits+misses > 0 {
		fmt.Fprintf(w, "pcload: server cell cache: %.1f%% hit rate (%.0f hits / %.0f misses)\n",
			100*hits/(hits+misses), hits, misses)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pcload: "+format+"\n", args...)
	os.Exit(1)
}

// parseMix parses "bound=6,batch=2,mutate=2" into weights.
func parseMix(s string) (map[string]int, error) {
	w := map[string]int{"bound": 0, "batch": 0, "mutate": 0}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		if _, known := w[name]; !known {
			return nil, fmt.Errorf("unknown op %q in mix (want bound, batch, mutate)", name)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad weight in %q", part)
		}
		w[name] = n
	}
	if w["bound"]+w["batch"]+w["mutate"] == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", s)
	}
	return w, nil
}

func fetchStore(r *retrier, base string) (*server.StoreResponse, error) {
	// Retried like everything else: against a freshly restarted server this
	// rides out the recovery gate's 503s until replay completes.
	var st server.StoreResponse
	code, raw, err := r.get(base+"/v1/store", &st)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("status %d (%s)", code, raw)
	}
	return &st, nil
}

// schemaOf rebuilds the schema a /v1/store response describes.
func schemaOf(st *server.StoreResponse) (*domain.Schema, error) {
	raw, err := json.Marshal(core.SpecJSON{Schema: st.Schema})
	if err != nil {
		return nil, err
	}
	_, schema, err := core.DecodeSet(raw)
	if err != nil {
		return nil, fmt.Errorf("rebuilding schema: %w", err)
	}
	return schema, nil
}

// verifyPinned rebuilds the fetched constraint state locally and checks that
// pinned HTTP reads are bit-identical to direct engine bounds over it, and
// that forced-summary reads of the same queries are supersets of the local
// exact range (the summary tier's soundness contract, checked end to end).
// It returns how many queries the summary tier actually answered — the tier
// only exists at the store frontier, so a concurrent writer moving the epoch
// past the pinned snapshot makes the server escalate to exact; those count
// as escalations, not failures.
//
// With replicas, every pinned query is also posted to each replica and
// compared bitwise against the same local range: the epoch pin names one
// immutable answer, so primary and follower must agree to the bit or
// replication is broken. A follower still catching up holds the read until
// its tail reaches the pinned epoch (the implied min_epoch gate), so this
// check is exact even against a lagging replica.
func verifyPinned(r *retrier, base string, replicas []string, st *server.StoreResponse, schema *domain.Schema, n int, seed int64) (int, error) {
	raw, err := json.Marshal(core.SpecJSON{Schema: st.Schema, Constraints: st.Constraints})
	if err != nil {
		return 0, err
	}
	local, _, err := core.DecodeSet(raw)
	if err != nil {
		return 0, fmt.Errorf("rebuilding store: %w", err)
	}
	engine := core.NewEngine(local, nil, core.Options{})
	p := newPicker(rand.New(rand.NewSource(seed)), 0) // uniform: verify covers the whole domain
	summaries := 0
	for i := 0; i < n; i++ {
		// The query is drawn once per i, so the verified sequence is
		// reproducible from -seed no matter how many 429s the retrier
		// absorbs along the way.
		qj := randomQuery(p, schema)
		var resp server.BoundResponse
		code, body, err := r.post(base+"/v1/bound",
			server.BoundRequest{Query: qj, Epoch: &st.Epoch}, &resp)
		if err != nil {
			return summaries, err
		}
		if code != http.StatusOK {
			return summaries, fmt.Errorf("query %d (%+v): status %d (%s) — pinned epoch %d may have been evicted; rerun verification against a fresh server", i, qj, code, body, st.Epoch)
		}
		q, err := core.QueryFromJSON(schema, qj)
		if err != nil {
			return summaries, fmt.Errorf("query %d: %v", i, err)
		}
		want, err := engine.Bound(q)
		if err != nil {
			return summaries, fmt.Errorf("query %d: local bound: %v", i, err)
		}
		got := resp.Range.Range()
		if !bitIdentical(got, want) {
			return summaries, fmt.Errorf("query %d (%+v): served range %+v != local range %+v", i, qj, got, want)
		}
		for _, rep := range replicas {
			var rresp server.BoundResponse
			code, body, err := r.post(rep+"/v1/bound",
				server.BoundRequest{Query: qj, Epoch: &st.Epoch}, &rresp)
			if err != nil {
				return summaries, fmt.Errorf("query %d: replica %s: %v", i, rep, err)
			}
			if code != http.StatusOK {
				return summaries, fmt.Errorf("query %d (%+v): replica %s: status %d (%s) — its tail may not have reached epoch %d within the staleness budget", i, qj, rep, code, body, st.Epoch)
			}
			if rresp.Epoch != st.Epoch {
				return summaries, fmt.Errorf("query %d: replica %s answered at epoch %d, pinned %d", i, rep, rresp.Epoch, st.Epoch)
			}
			if rgot := rresp.Range.Range(); !bitIdentical(rgot, want) {
				return summaries, fmt.Errorf("query %d (%+v): replica %s range %+v != primary/local range %+v at epoch %d",
					i, qj, rep, rgot, want, st.Epoch)
			}
		}

		var sresp server.BoundResponse
		code, body, err = r.post(base+"/v1/bound",
			server.BoundRequest{Query: qj, Epoch: &st.Epoch, Precision: "summary"}, &sresp)
		if err != nil {
			return summaries, err
		}
		if code != http.StatusOK {
			return summaries, fmt.Errorf("query %d (%+v): forced summary: status %d (%s)", i, qj, code, body)
		}
		if sresp.Precision != "summary" {
			continue // escalated (pinned epoch behind the frontier) or pre-tiering server
		}
		sum := sresp.Range.Range()
		// An empty exact range (lo > hi) is contained in anything.
		if want.Lo <= want.Hi && (sum.Lo > want.Lo || sum.Hi < want.Hi) {
			return summaries, fmt.Errorf("query %d (%+v): summary range [%v,%v] is not a superset of exact [%v,%v]",
				i, qj, sum.Lo, sum.Hi, want.Lo, want.Hi)
		}
		if !sum.MaybeEmpty && want.MaybeEmpty {
			return summaries, fmt.Errorf("query %d (%+v): summary claims a certainly non-empty instance set, exact disagrees", i, qj)
		}
		summaries++
	}
	return summaries, nil
}

// bitIdentical compares two ranges field by field, with the float endpoints
// compared by their bit patterns (so -0 vs 0 or differing NaNs fail).
func bitIdentical(got, want core.Range) bool {
	return math.Float64bits(got.Lo) == math.Float64bits(want.Lo) &&
		math.Float64bits(got.Hi) == math.Float64bits(want.Hi) &&
		got.LoExact == want.LoExact && got.HiExact == want.HiExact &&
		got.MaybeEmpty == want.MaybeEmpty && got.Reconciled == want.Reconciled
}

type loadConfig struct {
	duration    time.Duration
	concurrency int
	weights     map[string]int
	batchSize   int
	seed        int64
	skew        float64
	precision   string
	maxWidth    *server.Num
	// readBases are the base URLs reads fan out across (the replicas under
	// -target, or just the primary). Mutations always go to the primary.
	readBases []string
}

// skewBuckets is the resolution of the zipf hot spot: the domain of every
// attribute is split into this many equal slices and a zipf draw picks the
// slice a region starts in (slice 0 hottest).
const skewBuckets = 64

// picker draws query/mutation regions: uniformly, or zipf-skewed toward the
// low end of every attribute's domain so queries and mutations concentrate
// on the same hot spot.
type picker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newPicker(rng *rand.Rand, skew float64) *picker {
	p := &picker{rng: rng}
	if skew > 0 {
		// rand.NewZipf needs s > 1; the flag's 0 = uniform, so shift by 1.
		p.zipf = rand.NewZipf(rng, 1+skew, 1, skewBuckets-1)
	}
	return p
}

// start draws the fractional position (in [0,1)) where a region begins.
func (p *picker) start() float64 {
	if p.zipf == nil {
		return p.rng.Float64()
	}
	return (float64(p.zipf.Uint64()) + p.rng.Float64()) / skewBuckets
}

// opStats aggregates one operation type's outcomes across all workers.
type opStats struct {
	ok        int
	throttled int
	errors    []string
	latencies []time.Duration
}

type loadStats struct {
	ops map[string]*opStats
	// served counts queries by the precision tag of their response ("exact"
	// or "summary"); empty tags (a pre-tiering server) are not counted.
	served map[string]int
}

func (s *loadStats) hardErrors() int {
	n := 0
	for _, op := range s.ops {
		n += len(op.errors)
	}
	return n
}

func (s *loadStats) report(w io.Writer, d time.Duration) {
	total, throttled, failed := 0, 0, 0
	for _, op := range s.ops {
		total += op.ok + op.throttled + len(op.errors)
		throttled += op.throttled
		failed += len(op.errors)
	}
	fmt.Fprintf(w, "pcload: %d requests in %v (%.1f req/s), %d failed, %d throttled (429)\n",
		total, d, float64(total)/d.Seconds(), failed, throttled)
	if tagged := s.served["exact"] + s.served["summary"]; tagged > 0 {
		fmt.Fprintf(w, "pcload: served precision mix: %d exact, %d summary (%.1f%% summary)\n",
			s.served["exact"], s.served["summary"], 100*float64(s.served["summary"])/float64(tagged))
	}
	for _, name := range []string{"bound", "batch", "mutate"} {
		op := s.ops[name]
		lat := append([]time.Duration(nil), op.latencies...)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p50, p90, p99 := quantileDur(lat, 0.5), quantileDur(lat, 0.9), quantileDur(lat, 0.99)
		fmt.Fprintf(w, "  %-6s %6d ok  %4d throttled  %3d failed  p50 %8v  p90 %8v  p99 %8v\n",
			name, op.ok, op.throttled, len(op.errors),
			p50.Round(10*time.Microsecond), p90.Round(10*time.Microsecond), p99.Round(10*time.Microsecond))
	}
	shown := 0
	for _, name := range []string{"bound", "batch", "mutate"} {
		for _, msg := range s.ops[name].errors {
			if shown == 5 {
				fmt.Fprintf(w, "  … more errors elided\n")
				return
			}
			fmt.Fprintf(w, "  ERROR %s: %s\n", name, msg)
			shown++
		}
	}
}

func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runLoad drives the closed-loop phase: each worker owns a deterministic
// RNG, a stack of constraint ids it added (so mutations clean up after
// themselves and the store size stays bounded), and merges its stats on
// exit.
func runLoad(r *retrier, base string, schema *domain.Schema, cfg loadConfig) *loadStats {
	deadline := time.Now().Add(cfg.duration)
	results := make([]*loadStats, cfg.concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = loadWorker(r, base, schema, cfg, w, deadline)
		}(w)
	}
	wg.Wait()
	merged := &loadStats{ops: map[string]*opStats{
		"bound": {}, "batch": {}, "mutate": {},
	}, served: map[string]int{}}
	for _, r := range results {
		for name, op := range r.ops {
			m := merged.ops[name]
			m.ok += op.ok
			m.throttled += op.throttled
			m.errors = append(m.errors, op.errors...)
			m.latencies = append(m.latencies, op.latencies...)
		}
		for tag, n := range r.served {
			merged.served[tag] += n
		}
	}
	return merged
}

func loadWorker(r *retrier, base string, schema *domain.Schema, cfg loadConfig, w int, deadline time.Time) *loadStats {
	p := newPicker(rand.New(rand.NewSource(cfg.seed+int64(w)*7919)), cfg.skew)
	stats := &loadStats{ops: map[string]*opStats{
		"bound": {}, "batch": {}, "mutate": {},
	}, served: map[string]int{}}
	wTotal := cfg.weights["bound"] + cfg.weights["batch"] + cfg.weights["mutate"]
	var myIDs []uint64
	for time.Now().Before(deadline) {
		pick := p.rng.Intn(wTotal)
		var name string
		switch {
		case pick < cfg.weights["bound"]:
			name = "bound"
		case pick < cfg.weights["bound"]+cfg.weights["batch"]:
			name = "batch"
		default:
			name = "mutate"
		}
		op := stats.ops[name]
		start := time.Now()
		code, errMsg := doOp(r, base, schema, p, name, cfg, &myIDs, stats.served)
		elapsed := time.Since(start)
		switch {
		case errMsg != "":
			op.errors = append(op.errors, errMsg)
		case code == http.StatusTooManyRequests:
			op.throttled++
			time.Sleep(10 * time.Millisecond) // honor backpressure
		default:
			op.ok++
			op.latencies = append(op.latencies, elapsed)
		}
	}
	// Leave the store as found: retract this worker's surviving additions.
	for _, id := range myIDs {
		_, _, _ = r.post(base+"/v1/store/remove", server.RemoveRequest{ID: id}, nil)
	}
	return stats
}

// doOp issues one operation. It returns the status code and, for hard
// failures (transport errors, unexpected statuses, malformed bodies), a
// non-empty error message. 429 is backpressure, not failure. Precision tags
// on successful query responses are tallied into served.
func doOp(r *retrier, base string, schema *domain.Schema, p *picker, name string, cfg loadConfig, myIDs *[]uint64, served map[string]int) (int, string) {
	rng := p.rng
	// Reads fan out across the read targets (replicas under -target);
	// mutations always go to base, the primary.
	readBase := base
	if len(cfg.readBases) > 0 {
		readBase = cfg.readBases[rng.Intn(len(cfg.readBases))]
	}
	switch name {
	case "bound":
		var resp server.BoundResponse
		code, body, err := r.post(readBase+"/v1/bound",
			server.BoundRequest{Query: randomQuery(p, schema), Precision: cfg.precision, MaxWidth: cfg.maxWidth}, &resp)
		if err == nil && code == http.StatusOK && resp.Precision != "" {
			served[resp.Precision]++
		}
		return checkQueryResp(code, body, err, 1, []server.RangeJSON{resp.Range})
	case "batch":
		queries := make([]core.QueryJSON, cfg.batchSize)
		for i := range queries {
			queries[i] = randomQuery(p, schema)
		}
		var resp server.BatchResponse
		code, body, err := r.post(readBase+"/v1/batch",
			server.BatchRequest{Queries: queries, Precision: cfg.precision, MaxWidth: cfg.maxWidth}, &resp)
		if err == nil && code == http.StatusOK {
			for _, tag := range resp.Precisions {
				if tag != "" {
					served[tag]++
				}
			}
		}
		return checkQueryResp(code, body, err, cfg.batchSize, resp.Ranges)
	default: // mutate
		// Alternate between growing and shrinking so the store size hovers
		// around its boot state instead of drifting.
		if len(*myIDs) > 0 && rng.Intn(2) == 0 {
			id := (*myIDs)[0]
			code, body, err := r.post(base+"/v1/store/remove", server.RemoveRequest{ID: id}, nil)
			if code == http.StatusOK {
				// Pop only once the server confirms: a failed remove keeps
				// the id queued for the end-of-run cleanup.
				*myIDs = (*myIDs)[1:]
			}
			if err != nil {
				return 0, err.Error()
			}
			if code != http.StatusOK && code != http.StatusTooManyRequests {
				return code, fmt.Sprintf("remove id %d: status %d (%s)", id, code, body)
			}
			return code, ""
		}
		var resp server.AddResponse
		code, body, err := r.post(base+"/v1/store/add",
			server.AddRequest{Constraints: []core.PCJSON{randomConstraint(p, schema)}}, &resp)
		if err != nil {
			return 0, err.Error()
		}
		if code == http.StatusOK {
			*myIDs = append(*myIDs, resp.IDs...)
			return code, ""
		}
		if code == http.StatusTooManyRequests {
			return code, ""
		}
		return code, fmt.Sprintf("add: status %d (%s)", code, body)
	}
}

func checkQueryResp(code int, body []byte, err error, wantRanges int, ranges []server.RangeJSON) (int, string) {
	if err != nil {
		return 0, err.Error()
	}
	if code == http.StatusTooManyRequests {
		return code, ""
	}
	if code != http.StatusOK {
		return code, fmt.Sprintf("status %d (%s)", code, body)
	}
	if len(ranges) != wantRanges {
		return code, fmt.Sprintf("%d ranges in response, want %d", len(ranges), wantRanges)
	}
	for i, r := range ranges {
		lo, hi := float64(r.Lo), float64(r.Hi)
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return code, fmt.Sprintf("range %d is NaN: %+v", i, r)
		}
		// lo > hi is the legitimate "no instance matches" marker; anything
		// else must be an ordered interval.
	}
	return code, ""
}

// randomQuery draws an aggregate query: any of the five aggregates, over the
// full domain or a region (skew-aware) on one or two attributes.
func randomQuery(p *picker, schema *domain.Schema) core.QueryJSON {
	rng := p.rng
	aggs := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}
	qj := core.QueryJSON{Agg: aggs[rng.Intn(len(aggs))]}
	if qj.Agg != "COUNT" {
		qj.Attr = schema.Attr(rng.Intn(schema.Len())).Name
	}
	for _, i := range pickAttrs(rng, schema.Len(), rng.Intn(3)) {
		if qj.Where == nil {
			qj.Where = map[string][2]float64{}
		}
		a := schema.Attr(i)
		qj.Where[a.Name] = randomSubrange(p, a)
	}
	return qj
}

// randomConstraint draws a constraint over a random (skew-aware) region: a
// value window on one attribute and a small frequency window. Adding it can
// only narrow coverage gaps, so a closed store stays closed under load.
func randomConstraint(p *picker, schema *domain.Schema) core.PCJSON {
	rng := p.rng
	pj := core.PCJSON{
		Name:      fmt.Sprintf("load-%d", rng.Int63()),
		Predicate: map[string][2]float64{},
		Values:    map[string][2]float64{},
	}
	for _, i := range pickAttrs(rng, schema.Len(), 1+rng.Intn(2)) {
		a := schema.Attr(i)
		pj.Predicate[a.Name] = randomSubrange(p, a)
	}
	va := schema.Attr(rng.Intn(schema.Len()))
	pj.Values[va.Name] = randomSubrange(p, va)
	pj.KLo = rng.Intn(3)
	pj.KHi = pj.KLo + rng.Intn(5)
	return pj
}

// pickAttrs draws up to n distinct attribute indices.
func pickAttrs(rng *rand.Rand, total, n int) []int {
	if n > total {
		n = total
	}
	perm := rng.Perm(total)
	return perm[:n]
}

// randomSubrange draws a non-empty subrange of an attribute's domain,
// snapped to integers for integral attributes. Under -skew the start
// position is zipf-distributed, so regions pile onto the low end of the
// domain.
func randomSubrange(p *picker, a domain.Attr) [2]float64 {
	span := a.Domain.Hi - a.Domain.Lo
	lo := a.Domain.Lo + p.start()*span*0.8
	hi := lo + p.rng.Float64()*(a.Domain.Hi-lo)
	if a.Kind == domain.Integral {
		lo, hi = math.Floor(lo), math.Ceil(hi)
	}
	return [2]float64{lo, hi}
}
