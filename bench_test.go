package pcbound_test

// One benchmark per paper table/figure (deliverable d), plus ablation
// benchmarks for the implementation's key design decisions. Benchmarks run
// the same experiment code as cmd/pcbench at a reduced "quick" scale and
// report the headline metric of each figure through b.ReportMetric, so
// `go test -bench=.` regenerates every result series.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pcbound/internal/cells"
	"pcbound/internal/core"
	"pcbound/internal/data"
	"pcbound/internal/domain"
	"pcbound/internal/experiments"
	"pcbound/internal/join"
	"pcbound/internal/pcgen"
	"pcbound/internal/predicate"
	"pcbound/internal/sat"
	"pcbound/internal/sched"
	"pcbound/internal/workload"
)

func benchCfg() experiments.Config { return experiments.Quick() }

func runExperiment(b *testing.B, name string, metrics ...string) {
	b.Helper()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(name, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := res.Series[m]; ok {
			b.ReportMetric(v, sanitize(m))
		}
	}
}

func sanitize(m string) string {
	out := []rune(m)
	for i, r := range out {
		if r == ' ' {
			out[i] = '_'
		}
	}
	return string(out)
}

func BenchmarkFig1Extrapolation(b *testing.B) {
	runExperiment(b, "fig1", "relerr/0.5", "relerr/0.9")
}

func BenchmarkFig3Count(b *testing.B) {
	runExperiment(b, "fig3", "fail/Corr-PC/0.5", "over/Corr-PC/0.5", "over/Rand-PC/0.5")
}

func BenchmarkFig4Sum(b *testing.B) {
	runExperiment(b, "fig4", "fail/Corr-PC/0.5", "over/Corr-PC/0.5", "over/Rand-PC/0.5")
}

func BenchmarkTable1Confidence(b *testing.B) {
	runExperiment(b, "table1", "fail/US-1n/99.99", "over/US-1n/99.99", "over/Corr-PC")
}

func BenchmarkFig5SampleSize(b *testing.B) {
	runExperiment(b, "fig5", "over/SUM/US-1N", "over/SUM/US-10N", "over/SUM/Corr-PC")
}

func BenchmarkFig6Noise(b *testing.B) {
	runExperiment(b, "fig6", "fail/Corr-PC/3sd", "fail/Overlapping-PC/3sd", "fail/US-10n/3sd")
}

func BenchmarkFig7CellDecomposition(b *testing.B) {
	runExperiment(b, "fig7",
		"checks/No Optimization", "checks/DFS", "checks/DFS + Re-writing")
}

func BenchmarkFig8PartitionScaling(b *testing.B) {
	runExperiment(b, "fig8", "latency_us/50", "latency_us/2000")
}

func BenchmarkFig9MinMaxAvg(b *testing.B) {
	runExperiment(b, "fig9", "over/MIN", "over/MAX", "over/AVG")
}

func BenchmarkFig10Airbnb(b *testing.B) {
	runExperiment(b, "fig10", "over/SUM/Corr-PC", "over/SUM/Rand-PC")
}

func BenchmarkFig11Border(b *testing.B) {
	runExperiment(b, "fig11", "over/SUM/Corr-PC", "over/SUM/Rand-PC")
}

func BenchmarkFig12Joins(b *testing.B) {
	runExperiment(b, "fig12",
		"triangle/pc/10000", "triangle/es/10000", "chain/pc/10000", "chain/es/10000")
}

func BenchmarkTable2FailureMatrix(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 25
	cfg.Rows = 3000
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run("table2", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Series["failures/Intel Wireless/SUM(light)/US-1p"], "US-1p_intel_sum_failures")
	b.ReportMetric(res.Series["failures/Intel Wireless/SUM(light)/PC"], "PC_intel_sum_failures")
}

// --- Ablation benchmarks ---

// BenchmarkAblationDecomposition compares the three decomposition strategies
// head-to-head on one workload (Figure 7's ablation as a micro-benchmark).
func BenchmarkAblationDecomposition(b *testing.B) {
	schema := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
		domain.Attr{Name: "y", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
	)
	rng := rand.New(rand.NewSource(1))
	preds := make([]*predicate.P, 12)
	for i := range preds {
		w := 40 + rng.Float64()*40
		xl := rng.Float64() * (100 - w)
		yl := rng.Float64() * (100 - w)
		preds[i] = predicate.NewBuilder(schema).Range("x", xl, xl+w).Range("y", yl, yl+w).Build()
	}
	for _, strat := range []cells.Strategy{cells.Naive, cells.DFS, cells.DFSRewrite} {
		b.Run(strat.String(), func(b *testing.B) {
			solver := sat.New(schema)
			for i := 0; i < b.N; i++ {
				if _, err := cells.Decompose(solver, preds, cells.Options{
					Strategy: strat, SkipProjections: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFastPath measures the disjoint greedy fast path against
// the general MILP path on the same disjoint constraint set.
func BenchmarkAblationFastPath(b *testing.B) {
	tb := data.Intel(4000, 1)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	set, err := pcgen.CorrPC(missing, []string{"time"}, 200)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.New(missing.Schema(), []string{"time"}, "light", 7)
	queries := gen.Queries(50, core.Sum)
	for _, disable := range []bool{false, true} {
		name := "greedy"
		if disable {
			name = "milp"
		}
		b.Run(name, func(b *testing.B) {
			engine := core.NewEngine(set, nil, core.Options{DisableFastPath: disable})
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := engine.Bound(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFECvsCartesian quantifies the Section 5.2 bound
// improvement over the naive product as query size grows.
func BenchmarkAblationFECvsCartesian(b *testing.B) {
	for _, k := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("chain-%d", k), func(b *testing.B) {
			g := join.Chain(k, 1000)
			var fec, cart float64
			for i := 0; i < b.N; i++ {
				var err error
				fec, err = join.CountBound(g)
				if err != nil {
					b.Fatal(err)
				}
				cart = join.CartesianCount(g)
			}
			b.ReportMetric(cart/fec, "cartesian_over_fec")
		})
	}
}

// BenchmarkAblationParallelBatch is the sequential-vs-parallel ablation for
// the batch-bounding engine: a ≥100-query workload with repeated query
// regions, bounded (a) by the seed's sequential path — a per-query Bound
// loop with the decomposition cache disabled — and (b) by BoundBatch with a
// worker pool and the shared decomposition cache. The speedup sub-benchmark
// verifies the two paths return bit-identical Ranges and reports the
// wall-clock ratio via b.ReportMetric. On a single-core host the win comes
// from decomposition reuse; on multi-core hosts the worker pool compounds it.
func BenchmarkAblationParallelBatch(b *testing.B) {
	tb := data.Intel(4000, 1)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	rng := rand.New(rand.NewSource(3))
	set, err := pcgen.RandPC(missing, []string{"device", "time"}, 24, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.New(missing.Schema(), []string{"device", "time"}, "light", 7)
	base := gen.Queries(30, core.Sum)
	queries := make([]core.Query, 0, 4*len(base))
	for len(queries) < 120 { // ≥100 queries, each region appearing 4 times
		queries = append(queries, base...)
	}
	par := runtime.GOMAXPROCS(0)
	if par < 4 {
		par = 4
	}
	seqOpts := core.Options{DisableDecompCache: true}

	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine := core.NewEngine(set, nil, seqOpts)
			for _, q := range queries {
				if _, err := engine.Bound(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("batch-par%d", par), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine := core.NewEngine(set, nil, core.Options{})
			if _, err := engine.BoundBatch(queries, core.BatchOptions{Parallelism: par}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("speedup", func(b *testing.B) {
		var seqTotal, batchTotal time.Duration
		for i := 0; i < b.N; i++ {
			seqEngine := core.NewEngine(set, nil, seqOpts)
			want := make([]core.Range, len(queries))
			start := time.Now()
			for qi, q := range queries {
				var err error
				want[qi], err = seqEngine.Bound(q)
				if err != nil {
					b.Fatal(err)
				}
			}
			seqTotal += time.Since(start)

			batchEngine := core.NewEngine(set, nil, core.Options{})
			start = time.Now()
			got, err := batchEngine.BoundBatch(queries, core.BatchOptions{Parallelism: par})
			if err != nil {
				b.Fatal(err)
			}
			batchTotal += time.Since(start)

			for qi := range want {
				if got[qi] != want[qi] {
					b.Fatalf("query %d: batch range %+v != sequential range %+v", qi, got[qi], want[qi])
				}
			}
		}
		b.ReportMetric(float64(seqTotal)/float64(batchTotal), "speedup")
		b.ReportMetric(float64(len(queries)), "queries")
	})
}

// --- Hot-path benchmarks (PR 2) ---

// hotPathWorkload is one BenchmarkHotPath scenario: a constraint set, a
// query mix over all five aggregates, and the engine options that shape
// where the time goes (SAT-dominated decomposition, MILP-dominated
// allocation search, or an even mix).
type hotPathWorkload struct {
	name    string
	set     *core.Set
	queries []core.Query
	opts    core.Options
}

func hotPathWorkloads(b *testing.B) []hotPathWorkload {
	b.Helper()
	allAggs := func(gen *workload.Gen, n int) []core.Query {
		var qs []core.Query
		for _, agg := range []core.Agg{core.Count, core.Sum, core.Avg, core.Min, core.Max} {
			qs = append(qs, gen.Queries(n, agg)...)
		}
		return qs
	}

	// SAT-heavy: a dense overlapping constraint set with the decomposition
	// cache disabled, so every query pays the full DFS+SAT+projection cost.
	tb := data.Intel(3000, 1)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	rng := rand.New(rand.NewSource(41))
	satSet, err := pcgen.RandPC(missing, []string{"device", "time"}, 36, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	satGen := workload.New(missing.Schema(), []string{"device", "time"}, "light", 11)
	satHeavy := hotPathWorkload{
		name:    "sat-heavy",
		set:     satSet,
		queries: allAggs(satGen, 3),
		opts:    core.Options{DisableDecompCache: true},
	}

	// MILP-heavy: the cache amortizes decomposition across repeated regions,
	// so branch-and-bound, feasibility probes and threshold searches
	// dominate. MIN/MAX/AVG issue the most MILP solves per query.
	rng2 := rand.New(rand.NewSource(43))
	milpSet, err := pcgen.RandPC(missing, []string{"device", "time"}, 18, 10, rng2)
	if err != nil {
		b.Fatal(err)
	}
	milpGen := workload.New(missing.Schema(), []string{"device", "time"}, "light", 13)
	milpQueries := allAggs(milpGen, 2)
	// Repeat the regions so the decomposition cache absorbs SAT work.
	milpQueries = append(milpQueries, milpQueries...)
	milpHeavy := hotPathWorkload{
		name:    "milp-heavy",
		set:     milpSet,
		queries: milpQueries,
		opts:    core.Options{},
	}

	// Mixed: fresh decompositions and full allocation searches together.
	mixed := hotPathWorkload{
		name:    "mixed",
		set:     milpSet,
		queries: allAggs(milpGen, 3),
		opts:    core.Options{DisableDecompCache: true},
	}
	return []hotPathWorkload{satHeavy, milpHeavy, mixed}
}

func runHotPath(b *testing.B, w hotPathWorkload, reference bool) []core.Range {
	b.Helper()
	opts := w.opts
	opts.Reference = reference
	engine := core.NewEngine(w.set, nil, opts)
	out := make([]core.Range, len(w.queries))
	for qi, q := range w.queries {
		var err error
		out[qi], err = engine.Bound(q)
		if err != nil {
			b.Fatal(err)
		}
	}
	return out
}

// BenchmarkHotPath measures the optimized bounding stack (arena SAT with
// spatial pruning, incremental cell DFS, pooled LP contexts, cached-solution
// branch-and-bound) against the preserved pre-optimization path
// (core.Options.Reference) on SAT-heavy, MILP-heavy and mixed workloads.
//
// The reference/optimized sub-benchmarks report ns/op and allocs/op for each
// path; the speedup sub-benchmark runs both back to back, verifies the Range
// outputs of all five aggregates are bit-identical, and reports the
// wall-clock speedup and the allocation reduction factor.
func BenchmarkHotPath(b *testing.B) {
	for _, w := range hotPathWorkloads(b) {
		b.Run(w.name+"/reference", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runHotPath(b, w, true)
			}
		})
		b.Run(w.name+"/optimized", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runHotPath(b, w, false)
			}
		})
		b.Run(w.name+"/speedup", func(b *testing.B) {
			var refTime, optTime time.Duration
			var refAllocs, optAllocs uint64
			var ms runtime.MemStats
			for i := 0; i < b.N; i++ {
				runtime.ReadMemStats(&ms)
				m0 := ms.Mallocs
				start := time.Now()
				want := runHotPath(b, w, true)
				refTime += time.Since(start)
				runtime.ReadMemStats(&ms)
				refAllocs += ms.Mallocs - m0

				runtime.ReadMemStats(&ms)
				m0 = ms.Mallocs
				start = time.Now()
				got := runHotPath(b, w, false)
				optTime += time.Since(start)
				runtime.ReadMemStats(&ms)
				optAllocs += ms.Mallocs - m0

				for qi := range want {
					if got[qi] != want[qi] {
						b.Fatalf("query %d (%v): optimized range %+v != reference %+v",
							qi, w.queries[qi].Agg, got[qi], want[qi])
					}
				}
			}
			b.ReportMetric(float64(refTime)/float64(optTime), "speedup")
			b.ReportMetric(float64(refAllocs)/float64(optAllocs), "alloc_reduction")
			b.ReportMetric(float64(len(w.queries)), "queries")
		})
	}
}

// BenchmarkHotPathWarmStart measures the opt-in dual-simplex warm start on
// the MILP-heavy workload against the default cold-solve configuration.
func BenchmarkHotPathWarmStart(b *testing.B) {
	ws := hotPathWorkloads(b)
	w := ws[1] // milp-heavy
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			opts := w.opts
			opts.MILP.WarmStart = warm
			for i := 0; i < b.N; i++ {
				engine := core.NewEngine(w.set, nil, opts)
				for _, q := range w.queries {
					if _, err := engine.Bound(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Constraint-store benchmarks (PR 3) ---

// incrementalStore builds a store of overlapping constraint "chains" along an
// integral axis plus an all-aggregate workload over sliding query windows.
// Each window overlaps only a few constraints, so a single-constraint
// mutation leaves most windows' decompositions untouched — exactly the
// situation scoped cache invalidation targets.
func incrementalStore() (*core.Store, []core.PCID, []core.Query) {
	schema := domain.NewSchema(
		domain.Attr{Name: "x", Kind: domain.Integral, Domain: domain.NewInterval(0, 99)},
		domain.Attr{Name: "v", Kind: domain.Continuous, Domain: domain.NewInterval(0, 100)},
	)
	store := core.NewStore(schema)
	var pcs []core.PC
	for i := 0; i < 30; i++ {
		lo := float64(3 * i)
		pcs = append(pcs, core.MustPC(
			// Width-12 boxes every 3 steps: ~4 constraints overlap each
			// lattice point, so each query window decomposes into many cells
			// and the DFS+SAT+projection work dominates the per-window MILP.
			predicate.NewBuilder(schema).Range("x", lo, lo+12).Build(),
			map[string]domain.Interval{"v": domain.NewInterval(0, 40+float64(i%4)*10)},
			i%3, 6+i%5,
		))
	}
	ids, err := store.AddPCs(pcs...)
	if err != nil {
		panic(err)
	}
	var queries []core.Query
	for j := 0; j < 9; j++ {
		where := predicate.NewBuilder(schema).Range("x", float64(10*j), float64(10*j+12)).Build()
		for _, agg := range []core.Agg{core.Count, core.Sum} {
			queries = append(queries, core.Query{Agg: agg, Attr: "v", Where: where})
		}
	}
	return store, ids, queries
}

// mutateStore tightens one constraint in place (cycling through the store by
// step), bumping the epoch.
func mutateStore(store *core.Store, ids []core.PCID, step int) error {
	id := ids[step%len(ids)]
	pc, ok := store.Get(id)
	if !ok {
		return fmt.Errorf("constraint %d disappeared", id)
	}
	if pc.KHi > pc.KLo {
		pc.KHi--
	} else {
		pc.KHi += 4
	}
	return store.Replace(id, pc)
}

// BenchmarkIncrementalUpdate measures the mutate→rebound cycle: after each
// Replace, re-bound the whole workload either (a) incrementally — Rebind the
// engine to the new snapshot and keep the decomposition cache, whose scoped
// invalidation retains every entry the mutation did not touch — or (b) from
// scratch, building a fresh engine (cold cache, fresh solver) as the
// pre-Store design required after any constraint change. The speedup
// sub-benchmark runs both per mutation, verifies the Ranges are
// bit-identical, and reports the wall-clock ratio plus how many cache
// entries scoped invalidation retained per mutation.
func BenchmarkIncrementalUpdate(b *testing.B) {
	opts := core.Options{DisableFastPath: true}

	b.Run("incremental", func(b *testing.B) {
		store, ids, queries := incrementalStore()
		engine := core.NewEngine(store, nil, opts)
		if _, err := engine.BoundBatch(queries, core.BatchOptions{Parallelism: 1}); err != nil {
			b.Fatal(err) // warm the cache before timing
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mutateStore(store, ids, i); err != nil {
				b.Fatal(err)
			}
			engine = engine.Rebind()
			if _, err := engine.BoundBatch(queries, core.BatchOptions{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		store, ids, queries := incrementalStore()
		for i := 0; i < b.N; i++ {
			if err := mutateStore(store, ids, i); err != nil {
				b.Fatal(err)
			}
			engine := core.NewEngine(store, nil, opts)
			if _, err := engine.BoundBatch(queries, core.BatchOptions{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("speedup", func(b *testing.B) {
		store, ids, queries := incrementalStore()
		engine := core.NewEngine(store, nil, opts)
		if _, err := engine.BoundBatch(queries, core.BatchOptions{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
		var incTotal, rebTotal time.Duration
		retainedBefore := engine.CacheStats().Retained
		for i := 0; i < b.N; i++ {
			if err := mutateStore(store, ids, i); err != nil {
				b.Fatal(err)
			}

			start := time.Now()
			engine = engine.Rebind()
			got, err := engine.BoundBatch(queries, core.BatchOptions{Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			incTotal += time.Since(start)

			start = time.Now()
			fresh := core.NewEngine(store, nil, opts)
			want, err := fresh.BoundBatch(queries, core.BatchOptions{Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			rebTotal += time.Since(start)

			for qi := range want {
				if got[qi] != want[qi] {
					b.Fatalf("mutation %d query %d (%v): incremental %+v != rebuild %+v",
						i, qi, queries[qi].Agg, got[qi], want[qi])
				}
			}
		}
		retained := engine.CacheStats().Retained - retainedBefore
		b.ReportMetric(float64(rebTotal)/float64(incTotal), "speedup")
		b.ReportMetric(float64(retained)/float64(b.N), "retained_entries/op")
		b.ReportMetric(float64(len(queries)), "queries")
	})
}

// --- Intra-query parallelism benchmarks (PR 5) ---

// intraQueryStore is the single-huge-query scenario shared with
// `pcbench -bench intraquery` (see experiments.IntraQueryScenario).
func intraQueryStore() (*core.Store, core.Query) {
	return experiments.IntraQueryScenario()
}

// BenchmarkIntraQuery measures one MILP-heavy query bounded (a) on the
// sequential reference path (cells solved one at a time on the calling
// goroutine) and (b) with its per-cell solves fanned out over the shared
// cost-ordered scheduler. Both paths run with the cell-bound cache disabled
// so the timing isolates scheduling, not memoization; the cached
// sub-benchmark then shows the warm cell-cache path skipping the MILPs
// entirely. The speedup sub-benchmark verifies the two Ranges are
// bit-identical every iteration and reports the wall-clock ratio — the
// intra-query parallel speedup, ~1x on a single-core host and rising with
// cores (the per-cell tasks are independent MILPs).
func BenchmarkIntraQuery(b *testing.B) {
	par := runtime.GOMAXPROCS(0)
	if par < 4 {
		par = 4
	}
	seqOpts := core.Options{SequentialCells: true, DisableCellCache: true, DisableFastPath: true}

	b.Run("seq", func(b *testing.B) {
		b.ReportAllocs()
		store, q := intraQueryStore()
		engine := core.NewEngine(store, nil, seqOpts)
		for i := 0; i < b.N; i++ {
			if _, err := engine.Bound(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("sched-par%d", par), func(b *testing.B) {
		b.ReportAllocs()
		store, q := intraQueryStore()
		sch := sched.New(par)
		defer sch.Close()
		engine := core.NewEngine(store, nil, core.Options{
			Scheduler: sch, DisableCellCache: true, DisableFastPath: true,
		})
		for i := 0; i < b.N; i++ {
			if _, err := engine.Bound(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cellcache-warm", func(b *testing.B) {
		b.ReportAllocs()
		store, q := intraQueryStore()
		engine := core.NewEngine(store, nil, core.Options{DisableFastPath: true})
		if _, err := engine.Bound(q); err != nil {
			b.Fatal(err) // warm the cell cache before timing
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Bound(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("speedup", func(b *testing.B) {
		store, q := intraQueryStore()
		seqEngine := core.NewEngine(store, nil, seqOpts)
		sch := sched.New(par)
		defer sch.Close()
		parEngine := core.NewEngine(store, nil, core.Options{
			Scheduler: sch, DisableCellCache: true, DisableFastPath: true,
		})
		var seqTotal, parTotal time.Duration
		for i := 0; i < b.N; i++ {
			start := time.Now()
			want, err := seqEngine.Bound(q)
			if err != nil {
				b.Fatal(err)
			}
			seqTotal += time.Since(start)

			start = time.Now()
			got, err := parEngine.Bound(q)
			if err != nil {
				b.Fatal(err)
			}
			parTotal += time.Since(start)

			if got != want {
				b.Fatalf("scheduler range %+v != sequential range %+v", got, want)
			}
		}
		b.ReportMetric(float64(seqTotal)/float64(parTotal), "speedup")
		b.ReportMetric(float64(par), "workers")
	})
}

// BenchmarkAblationEarlyStop measures the tightness/time trade of
// Optimization 4 at several stop layers.
func BenchmarkAblationEarlyStop(b *testing.B) {
	tb := data.Intel(4000, 1)
	_, missing := tb.RemoveTopFraction("light", 0.3)
	rng := rand.New(rand.NewSource(2))
	set, err := pcgen.RandPC(missing, []string{"device", "time"}, 36, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.New(missing.Schema(), []string{"device", "time"}, "light", 7)
	queries := gen.Queries(20, core.Sum)
	for _, layer := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("layer-%d", layer), func(b *testing.B) {
			opts := core.Options{}
			opts.Cells.EarlyStopLayer = layer
			engine := core.NewEngine(set, nil, opts)
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := engine.Bound(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
