// Package pcbound is a from-scratch Go reproduction of "Fast and Reliable
// Missing Data Contingency Analysis with Predicate-Constraints" (Liang,
// Shang, Elmore, Krishnan, Franklin — SIGMOD 2020, arXiv:2004.04139).
//
// The library computes hard, deterministic result ranges for SUM, COUNT,
// AVG, MIN and MAX SQL aggregate queries over relations with missing rows,
// given user-specified predicate-constraints on the frequency and variation
// of the missing tuples. See README.md for a quickstart, the package map,
// and the experiment index.
//
// Constraint sets are dynamic: the constraint layer is a versioned, mutable
// core.Store supporting Add, Remove and Replace, with cheap copy-on-write
// Snapshot()s. Every mutation bumps the store's epoch; an Engine (and every
// BoundBatch worker) binds to one snapshot for its lifetime, so concurrent
// writers never perturb in-flight queries, and Engine.Rebind moves to the
// latest snapshot while keeping the decomposition cache warm. The cache
// invalidates by scope, not by flushing: an entry survives a mutation
// whenever no touched predicate box overlaps the entry's
// pushdown-normalized region on the schema lattice, which makes the
// mutate→rebound cycle far cheaper than rebuilding the engine (see
// BenchmarkIncrementalUpdate). Closure of the constraint set over the
// domain (Definition 3.2) is tracked incrementally across mutations by
// sat.Incremental.
//
// Within one query, the unit of scheduled solver work is a cell solve, not
// the query: per-cell feasibility MILPs, the two directional solves, AVG's
// bisection searches and MIN/MAX threshold probes are dispatched
// cost-ordered (most constraint-coupled cells first, against skew) on a
// shared work scheduler (internal/sched) fed by every in-flight query of
// every engine pointed at it, so one MILP-heavy query fans out across cores
// instead of pegging one. Results land in index-addressed slots and reduce
// in fixed cell order, making ranges bit-identical to the sequential path
// (core.Options.SequentialCells) at any parallelism. On top of it, an
// epoch-scoped per-cell bound cache memoizes cell-solve results under
// content signatures (cell signature + aggregate + attribute + solver
// options) with the same epoch-interval validity and scoped invalidation
// as the decomposition cache — repeated and overlapping traffic, and
// group-by groups sharing cell structure, skip LP/MILP entirely
// (see BenchmarkIntraQuery and the committed BENCH_PR5.json; reproduce
// with `go run ./cmd/pcbench -bench intraquery -json BENCH_PR5.json`).
//
// Above the exact solver sits a tiered-precision summary layer
// (internal/summary, attached by core.AttachSummary): per-constraint
// sketches — predicate boxes, clipped value hulls, frequency totals and a
// pairwise-disjointness certificate — maintained incrementally from the
// same mutation stream the WAL consumes, answering any of the five
// aggregates with a sound outer interval in O(constraints·dims) without
// touching LP/MILP. Summary intervals always contain the exact range
// (enforced by a randomized soundness differential and per-finding ulp
// widening of float sums), the exact path is bit-identical with or without
// the overlay, and core.BoundTiered escalates summary→exact under a
// caller-chosen width budget (see the tiered suite in the committed
// BENCH_PR8.json: the summary tier answers a MILP-heavy query three
// orders of magnitude faster than a cold exact solve).
//
// The stack also serves over the network: cmd/pcserved exposes bound/batch
// queries and store mutations as an HTTP JSON API (internal/server), where
// every read request is pinned to a store snapshot — the latest by default,
// or, via the request's epoch field, an older retained one, answered
// bit-identically to the original read no matter how the store has moved
// since. Engines come from a rebind-on-demand pool sharing one solver,
// solve-context pool, and decomposition cache across requests; reads may
// opt into tiered precision ("precision"/"max_width" request fields, every
// response tagged with the tier that answered); overload degrades
// tier-opted requests to summary answers before anything is shed with 429
// backpressure rather than unbounded queueing; and shutdown
// drains in-flight bounds (core.BoundBatchCtx skips only queries that have
// not started). cmd/pcload closed-loop-drives the API with a configurable
// bound/batch/mutate mix, reporting throughput and tail latency, and can
// verify served ranges bitwise against a local engine rebuilt from
// GET /v1/store.
//
// With a data directory, the served store is crash-safe (internal/wal):
// every mutation is appended to a CRC-framed write-ahead log before it is
// acknowledged — concurrent commits coalescing into one fsync under a
// group-commit window — and periodic snapshot checkpoints truncate the log
// behind them. Recovery loads the newest readable checkpoint, replays the
// tail, truncates away a torn final record, and restores the epoch counter
// and stable PCIDs exactly: a restarted server is bit-identical to one that
// never crashed, a property the tests enforce by simulating a crash at
// every filesystem operation of a workload over an injectable in-memory
// filesystem, and CI re-proves on a real server by SIGKILLing it under
// load (ci/crash_e2e.sh). cmd/pcwal inspects a data directory offline,
// read-only.
//
// The same log replicates: a pcserved started with -follow bootstraps from
// the primary's newest checkpoint and tails its WAL (wal.Tailer, over
// /v1/wal HTTP endpoints or a shared directory), applying the identical
// record stream recovery replays — so an epoch-pinned read on a follower is
// bit-identical to the primary's at that epoch. Truncation and tailing meet
// in a lease contract: every tailing request heartbeats the follower's
// replica lease with the epoch it has applied, checkpoint truncation holds
// every segment a live lease still needs, and two primary-side bounds —
// lease expiry for silent followers, a max-replica-lag cap for hopelessly
// slow ones — keep any single follower from pinning the log forever. A
// follower truncated past those bounds self-heals in place: the tail
// re-bootstraps from the newest checkpoint and atomically swaps the rebuilt
// store behind the serving path (in-flight pinned reads finish on their old
// snapshots, new pins into the discarded lineage answer 410, the event is
// counted in /metrics). cmd/pcrouter fronts such a fleet with one address:
// mutations forward to the primary and fail fast when it is down, reads
// balance across followers honoring each request's epoch pin against
// health-tracked frontiers and fail over on backend errors
// (internal/router). CI drills the whole story on real processes with
// SIGKILL, SIGSTOP and forced truncation (ci/repl_e2e.sh, ci/chaos_e2e.sh).
//
// Those invariants are machine-checked: cmd/pcvet is a custom static
// analysis suite (internal/analysis) that CI runs over the whole module
// via `go vet -vettool`. Its four analyzers enforce that map iteration
// order never reaches a bit-identical reduction (determinism), that
// nothing writes through a Snapshot or cached decomposition after
// construction (snapmut), that fields annotated `// guarded by mu` are
// only touched with the mutex held (lockcheck), and that the serving
// layer threads request contexts into the solver (ctxflow). Deliberate
// exceptions carry a //pcvet:ignore comment with a mandatory
// justification. See the README's "Correctness tooling" section.
//
// The root package carries module documentation and the per-figure
// benchmarks (bench_test.go); the implementation lives under internal/:
//
//   - internal/core — the predicate-constraint framework: versioned Store,
//     snapshots, the bounding Engine (Sections 3-4)
//   - internal/cells, internal/sat — cell decomposition and its SAT oracle
//   - internal/sched — the shared cost-ordered cell-solve scheduler
//   - internal/lp, internal/milp — simplex and branch-and-bound solvers
//   - internal/join — fractional-edge-cover join bounds (Section 5)
//   - internal/baselines, internal/pcgen, internal/data, internal/workload,
//     internal/experiments — the full evaluation harness (Section 6)
package pcbound
