// Package pcbound is a from-scratch Go reproduction of "Fast and Reliable
// Missing Data Contingency Analysis with Predicate-Constraints" (Liang,
// Shang, Elmore, Krishnan, Franklin — SIGMOD 2020, arXiv:2004.04139).
//
// The library computes hard, deterministic result ranges for SUM, COUNT,
// AVG, MIN and MAX SQL aggregate queries over relations with missing rows,
// given user-specified predicate-constraints on the frequency and variation
// of the missing tuples. See README.md for a quickstart, the package map,
// and the experiment index.
//
// The root package carries module documentation and the per-figure
// benchmarks (bench_test.go); the implementation lives under internal/:
//
//   - internal/core — the predicate-constraint framework (Sections 3-4)
//   - internal/cells, internal/sat — cell decomposition and its SAT oracle
//   - internal/lp, internal/milp — simplex and branch-and-bound solvers
//   - internal/join — fractional-edge-cover join bounds (Section 5)
//   - internal/baselines, internal/pcgen, internal/data, internal/workload,
//     internal/experiments — the full evaluation harness (Section 6)
package pcbound
